// Package fabric models the reconfigurable FPGA device at the heart of the
// Hyperion DPU (a Xilinx Alveo U280 in the paper): clocked accelerator
// slots, AXI-Stream plumbing between them, and partial dynamic
// reconfiguration through the ICAP port.
//
// The model is deliberately at the architectural level, not the gate
// level. A slot runs a Bitstream, which declares resource usage and a
// pipeline shape (depth and initiation interval); the fabric then gives
// the paper's two key properties for free: spatial multiplexing (slots do
// not interfere) and deterministic per-item latency (depth × clock
// period) with throughput 1/II items per cycle.
package fabric

import (
	"errors"
	"fmt"

	"hyperion/internal/sim"
	"hyperion/internal/telemetry"
)

// Resource kinds on the fabric, with U280-like totals.
type Resources struct {
	LUTs int // lookup tables
	FFs  int // flip-flops
	BRAM int // block RAM tiles (36 Kb each)
	DSP  int // DSP48 slices
	URAM int // UltraRAM tiles
}

// U280Resources is the approximate resource inventory of an Alveo U280.
func U280Resources() Resources {
	return Resources{LUTs: 1_304_000, FFs: 2_607_000, BRAM: 2_016, DSP: 9_024, URAM: 960}
}

// Sub subtracts u from r, reporting whether r had enough of everything.
func (r Resources) Sub(u Resources) (Resources, bool) {
	out := Resources{r.LUTs - u.LUTs, r.FFs - u.FFs, r.BRAM - u.BRAM, r.DSP - u.DSP, r.URAM - u.URAM}
	ok := out.LUTs >= 0 && out.FFs >= 0 && out.BRAM >= 0 && out.DSP >= 0 && out.URAM >= 0
	return out, ok
}

// Add accumulates u into r.
func (r Resources) Add(u Resources) Resources {
	return Resources{r.LUTs + u.LUTs, r.FFs + u.FFs, r.BRAM + u.BRAM, r.DSP + u.DSP, r.URAM + u.URAM}
}

// Config describes a fabric instance.
type Config struct {
	Name            string
	ClockHz         int64     // fabric clock, e.g. 250e6
	Slots           int       // number of partially-reconfigurable slots
	Total           Resources // total device resources
	ICAPBytesPerSec int64     // ICAP configuration bandwidth (≈ 400 MB/s on UltraScale+)
	DRAMBytes       int64     // on-card DRAM capacity
	HBMBytes        int64     // on-card HBM capacity (0 if none)
}

// DefaultConfig returns a U280-like fabric: 250 MHz, 5 reconfigurable
// slots as drawn in Figure 2, 32 GiB DRAM + 8 GiB HBM, 400 MB/s ICAP.
func DefaultConfig() Config {
	return Config{
		Name:            "u280",
		ClockHz:         250_000_000,
		Slots:           5,
		Total:           U280Resources(),
		ICAPBytesPerSec: 400 << 20,
		DRAMBytes:       32 << 30,
		HBMBytes:        8 << 30,
	}
}

// Errors returned by fabric operations.
var (
	ErrNoSlot         = errors.New("fabric: no free slot")
	ErrSlotBusy       = errors.New("fabric: slot busy reconfiguring")
	ErrSlotEmpty      = errors.New("fabric: slot has no bitstream")
	ErrOverCapacity   = errors.New("fabric: bitstream exceeds remaining resources")
	ErrUnauthorized   = errors.New("fabric: bitstream not authorized for this fabric")
	ErrBadBitstream   = errors.New("fabric: malformed bitstream")
	ErrSlotOutOfRange = errors.New("fabric: slot index out of range")
)

// Bitstream is a compiled accelerator image. SizeBytes drives the partial
// reconfiguration time through the ICAP; Depth and II drive the runtime
// pipeline model; Process is the functional payload executed per item.
type Bitstream struct {
	Name      string
	SizeBytes int64
	Uses      Resources
	Depth     int // pipeline depth in cycles (latency)
	II        int // initiation interval in cycles (1 = fully pipelined)
	// AuthTag must match the fabric's expected tag; the paper's config
	// engine accepts only authorized, encrypted bitstreams over the
	// control port. We model the check, not the cryptography.
	AuthTag string
	// Process is invoked once per item that flows through the slot, after
	// the modeled pipeline latency has elapsed. in is the item; the
	// returned value is emitted downstream (nil drops the item).
	Process func(in any) any
}

// Validate checks structural invariants of a bitstream.
func (b *Bitstream) Validate() error {
	switch {
	case b == nil:
		return ErrBadBitstream
	case b.Name == "":
		return fmt.Errorf("%w: empty name", ErrBadBitstream)
	case b.SizeBytes <= 0:
		return fmt.Errorf("%w: non-positive size", ErrBadBitstream)
	case b.Depth <= 0:
		return fmt.Errorf("%w: non-positive pipeline depth", ErrBadBitstream)
	case b.II <= 0:
		return fmt.Errorf("%w: non-positive initiation interval", ErrBadBitstream)
	case b.Process == nil:
		return fmt.Errorf("%w: nil process function", ErrBadBitstream)
	}
	return nil
}

// SlotState is the lifecycle of a reconfigurable slot.
type SlotState int

const (
	SlotEmpty SlotState = iota
	SlotReconfiguring
	SlotActive
)

func (s SlotState) String() string {
	switch s {
	case SlotEmpty:
		return "empty"
	case SlotReconfiguring:
		return "reconfiguring"
	case SlotActive:
		return "active"
	}
	return "invalid"
}

// Slot is one partially-reconfigurable region.
type Slot struct {
	Index     int
	State     SlotState
	Image     *Bitstream
	LoadedAt  sim.Time
	busyUntil sim.Time // pipeline issue: next cycle an item may enter

	completeName string       // precomputed completion event name for Image
	reconfigRef  sim.EventRef // pending activation event while reconfiguring

	in  *Stream
	out *Stream

	Items  int64 // items processed
	Cycles int64 // busy cycles consumed
}

// Fabric is the device model.
type Fabric struct {
	cfg     Config
	eng     *sim.Engine
	slots   []*Slot
	free    Resources
	authTag string

	rec       *telemetry.Recorder
	slotNames []string // armed only: precomputed per-slot span names
	subFree   []*submitCtx

	Counters sim.CounterSet
}

// New creates a fabric bound to the simulation engine. authTag is the
// tag the runtime config engine requires on every bitstream.
func New(eng *sim.Engine, cfg Config, authTag string) *Fabric {
	if cfg.Slots <= 0 || cfg.ClockHz <= 0 || cfg.ICAPBytesPerSec <= 0 {
		panic("fabric: invalid config")
	}
	f := &Fabric{cfg: cfg, eng: eng, free: cfg.Total, authTag: authTag}
	for i := 0; i < cfg.Slots; i++ {
		f.slots = append(f.slots, &Slot{Index: i})
	}
	return f
}

// Config returns the fabric configuration.
func (f *Fabric) Config() Config { return f.cfg }

// SetRecorder arms the telemetry plane: one span per submitted item
// covering pipeline issue to completion, on a thread per slot. Span
// names are precomputed here so the armed hot path never concatenates
// strings; disarmed the hooks are pure nil checks.
func (f *Fabric) SetRecorder(rec *telemetry.Recorder) {
	f.rec = rec
	if rec != nil && f.slotNames == nil {
		for i := range f.slots {
			f.slotNames = append(f.slotNames, fmt.Sprintf("slot%d", i))
		}
	}
}

// CyclePeriod returns the duration of one fabric clock cycle.
func (f *Fabric) CyclePeriod() sim.Duration {
	return sim.Duration(int64(sim.Second) / f.cfg.ClockHz)
}

// Cycles converts a cycle count to a duration.
func (f *Fabric) Cycles(n int64) sim.Duration { return sim.Duration(n) * f.CyclePeriod() }

// FreeResources reports resources not claimed by loaded bitstreams.
func (f *Fabric) FreeResources() Resources { return f.free }

// Slot returns slot i.
func (f *Fabric) Slot(i int) (*Slot, error) {
	if i < 0 || i >= len(f.slots) {
		return nil, ErrSlotOutOfRange
	}
	return f.slots[i], nil
}

// Slots returns all slots.
func (f *Fabric) Slots() []*Slot { return f.slots }

// ReconfigTime returns how long the ICAP needs to write a bitstream of
// the given size: the paper's 10–100 ms partial-reconfiguration window
// corresponds to 4–40 MB images at 400 MB/s.
func (f *Fabric) ReconfigTime(sizeBytes int64) sim.Duration {
	return sim.Duration(float64(sizeBytes) / float64(f.cfg.ICAPBytesPerSec) * float64(sim.Second))
}

// LoadBitstream starts partial reconfiguration of slot i with image b.
// done (may be nil) fires when the slot becomes active. The slot is
// unusable while reconfiguring; other slots are unaffected (spatial
// isolation).
func (f *Fabric) LoadBitstream(i int, b *Bitstream, done func()) error {
	slot, err := f.Slot(i)
	if err != nil {
		return err
	}
	if slot.State == SlotReconfiguring {
		return ErrSlotBusy
	}
	if err := b.Validate(); err != nil {
		return err
	}
	if b.AuthTag != f.authTag {
		return ErrUnauthorized
	}
	// Release the old image's resources before claiming the new one.
	free := f.free
	if slot.Image != nil {
		free = free.Add(slot.Image.Uses)
	}
	rem, ok := free.Sub(b.Uses)
	if !ok {
		return ErrOverCapacity
	}
	f.free = rem
	old := slot.Image
	slot.Image = b
	slot.completeName = "fabric.complete:" + b.Name
	slot.State = SlotReconfiguring
	_ = old
	f.Counters.Get("reconfigs").Add(1)
	slot.reconfigRef = f.eng.After(f.ReconfigTime(b.SizeBytes), "fabric.reconfig:"+b.Name, func() {
		slot.reconfigRef = sim.NoEvent
		slot.State = SlotActive
		slot.LoadedAt = f.eng.Now()
		slot.busyUntil = f.eng.Now()
		if done != nil {
			done()
		}
	})
	return nil
}

// Unload clears slot i immediately (tearing down a tenant).
func (f *Fabric) Unload(i int) error {
	slot, err := f.Slot(i)
	if err != nil {
		return err
	}
	if slot.State == SlotReconfiguring {
		return ErrSlotBusy
	}
	if slot.Image != nil {
		f.free = f.free.Add(slot.Image.Uses)
	}
	slot.Image = nil
	slot.State = SlotEmpty
	return nil
}

// Evict force-clears slot i immediately, even mid-reconfiguration — the
// fault plane's slot-kill primitive (an SEU scrub or PR-region fault;
// the graceful teardown path is Unload). A pending activation event is
// cancelled so the LoadBitstream done callback never fires, and the
// image's resources return to the pool. Items already issued into the
// pipeline still complete: each pins its image, exactly as with a
// reconfiguration started underneath them.
func (f *Fabric) Evict(i int) error {
	slot, err := f.Slot(i)
	if err != nil {
		return err
	}
	if slot.State == SlotReconfiguring {
		f.eng.Cancel(slot.reconfigRef)
		slot.reconfigRef = sim.NoEvent
	}
	if slot.Image != nil {
		f.free = f.free.Add(slot.Image.Uses)
	}
	slot.Image = nil
	slot.State = SlotEmpty
	f.Counters.Get("evictions").Add(1)
	return nil
}

// FindFreeSlot returns the lowest-indexed empty slot.
func (f *Fabric) FindFreeSlot() (int, error) {
	for _, s := range f.slots {
		if s.State == SlotEmpty {
			return s.Index, nil
		}
	}
	return -1, ErrNoSlot
}

// Submit pushes one item into slot i's pipeline. The result callback
// fires after the modeled pipeline latency with the value returned by the
// bitstream's Process function. Throughput is limited by the initiation
// interval: items entering faster than II cycles apart queue at the slot
// input (modeled by pushing busyUntil forward), exactly like a stalled
// AXIS upstream.
func (f *Fabric) Submit(i int, item any, result func(out any)) error {
	return f.SubmitSpan(i, item, 0, result)
}

// SubmitSpan is Submit with a request-scoped trace context: the span
// recorded for this item (when armed) is tagged with req so it joins
// the request's critical path.
func (f *Fabric) SubmitSpan(i int, item any, req telemetry.RequestID, result func(out any)) error {
	slot, err := f.Slot(i)
	if err != nil {
		return err
	}
	if slot.State != SlotActive || slot.Image == nil {
		return ErrSlotEmpty
	}
	now := f.eng.Now()
	issue := slot.busyUntil
	if issue < now {
		issue = now
	}
	iiDur := f.Cycles(int64(slot.Image.II))
	slot.busyUntil = issue.Add(iiDur)
	slot.Items++
	slot.Cycles += int64(slot.Image.II)
	complete := issue.Add(f.Cycles(int64(slot.Image.Depth)))
	sc := f.getSubmit()
	sc.img = slot.Image
	sc.i = i
	sc.item = item
	sc.req = req
	sc.issue = issue
	sc.result = result
	//hyperlint:allow(eventref) one-shot completion event: its own firing is the only thing that recycles sc, so there is no cancel window
	f.eng.At(complete, slot.completeName, sc.fireFn)
	return nil
}

// submitCtx carries one in-flight pipeline item to its completion
// event with a prebound fire function; instances cycle through the
// fabric's free list. The image is pinned per item, so a slot
// reconfigured mid-flight still completes with the old Process.
type submitCtx struct {
	f      *Fabric
	img    *Bitstream
	i      int
	item   any
	req    telemetry.RequestID
	issue  sim.Time
	result func(out any)
	fireFn func()
}

func (f *Fabric) getSubmit() *submitCtx {
	if n := len(f.subFree); n > 0 {
		sc := f.subFree[n-1]
		f.subFree = f.subFree[:n-1]
		return sc
	}
	sc := &submitCtx{f: f}
	sc.fireFn = sc.fire
	return sc
}

func (sc *submitCtx) fire() {
	f := sc.f
	out := sc.img.Process(sc.item)
	if f.rec != nil {
		f.rec.Span("fabric", f.slotNames[sc.i], sc.req, sc.issue, f.eng.Now())
	}
	result := sc.result
	sc.img, sc.item, sc.result = nil, nil, nil
	f.subFree = append(f.subFree, sc)
	if result != nil {
		result(out)
	}
}

// Utilization returns the fraction of cycles slot i spent busy since its
// bitstream was loaded.
func (f *Fabric) Utilization(i int) float64 {
	slot, err := f.Slot(i)
	if err != nil || slot.State != SlotActive {
		return 0
	}
	elapsed := f.eng.Now().Sub(slot.LoadedAt)
	if elapsed <= 0 {
		return 0
	}
	busy := f.Cycles(slot.Cycles)
	return float64(busy) / float64(elapsed)
}
