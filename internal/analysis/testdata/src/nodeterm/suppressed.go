package nodeterm

import "time"

// quiet shows both suppression placements: a standalone allow comment
// covering the next line, and a trailing allow comment on the
// offending line itself. Neither produces a diagnostic.
func quiet() time.Time {
	//hyperlint:allow(nodeterm) golden test: standalone suppression covers the next line
	time.Sleep(time.Millisecond)
	t := time.Now() //hyperlint:allow(nodeterm) golden test: trailing suppression covers its own line
	return t
}
