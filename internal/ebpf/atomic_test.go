package ebpf

import (
	"errors"
	"testing"
)

func TestEndianSemantics(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want uint64
	}{
		{"be16", "lddw r0, 0x1122334455667788\nbe16 r0\nexit", 0x8877},
		{"be32", "lddw r0, 0x1122334455667788\nbe32 r0\nexit", 0x88776655},
		{"be64", "lddw r0, 0x1122334455667788\nbe64 r0\nexit", 0x8877665544332211},
		{"le16_truncates", "lddw r0, 0x1122334455667788\nle16 r0\nexit", 0x7788},
		{"le32_truncates", "lddw r0, 0x1122334455667788\nle32 r0\nexit", 0x55667788},
		{"le64_identity", "lddw r0, 0x1122334455667788\nle64 r0\nexit", 0x1122334455667788},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := run(t, c.src, nil); got != c.want {
				t.Fatalf("got %#x, want %#x", got, c.want)
			}
		})
	}
}

func TestAtomicAddAndFetch(t *testing.T) {
	got := run(t, `
		stdw [r10-8], 100
		mov r1, r10
		mov r2, 7
		xadddw [r1-8], r2
		mov r3, 5
		xfadddw [r1-8], r3   ; r3 = old (107)
		ldxdw r0, [r10-8]    ; 112
		add r0, r3           ; +107 = 219
		exit`, nil)
	if got != 219 {
		t.Fatalf("got %d, want 219", got)
	}
}

func TestAtomicBitwiseOps(t *testing.T) {
	got := run(t, `
		stdw [r10-8], 0xF0
		mov r1, 0x0F
		aordw [r10-8], r1
		mov r2, 0x3F
		aanddw [r10-8], r2
		mov r3, 0xFF
		axordw [r10-8], r3
		ldxdw r0, [r10-8]
		exit`, nil)
	// 0xF0|0x0F=0xFF; &0x3F=0x3F; ^0xFF=0xC0
	if got != 0xC0 {
		t.Fatalf("got %#x, want 0xC0", got)
	}
}

func TestAtomicXchg(t *testing.T) {
	got := run(t, `
		stdw [r10-8], 11
		mov r1, 22
		xchgdw [r10-8], r1   ; r1 = 11, mem = 22
		ldxdw r0, [r10-8]
		add r0, r1           ; 22 + 11
		exit`, nil)
	if got != 33 {
		t.Fatalf("got %d, want 33", got)
	}
}

func TestAtomicCmpXchg(t *testing.T) {
	// Successful exchange: r0 == old.
	got := run(t, `
		stdw [r10-8], 5
		mov r0, 5            ; expected
		mov r1, 9            ; new
		cmpxchgdw [r10-8], r1
		ldxdw r2, [r10-8]    ; 9
		add r0, r2           ; old(5) + 9
		exit`, nil)
	if got != 14 {
		t.Fatalf("success case got %d, want 14", got)
	}
	// Failed exchange: memory untouched, r0 = old.
	got = run(t, `
		stdw [r10-8], 5
		mov r0, 77           ; wrong expectation
		mov r1, 9
		cmpxchgdw [r10-8], r1
		ldxdw r2, [r10-8]    ; still 5
		add r0, r2           ; old(5) + 5
		exit`, nil)
	if got != 10 {
		t.Fatalf("failure case got %d, want 10", got)
	}
}

func TestAtomic32BitWidth(t *testing.T) {
	got := run(t, `
		stdw [r10-8], 0
		lddw r1, 0x1FFFFFFFF
		xaddw [r10-8], r1    ; only low 32 bits added
		ldxdw r0, [r10-8]
		exit`, nil)
	if got != 0xFFFFFFFF {
		t.Fatalf("got %#x, want 0xFFFFFFFF", got)
	}
}

func TestAtomicMapValue(t *testing.T) {
	// Atomic increment through a looked-up map value — the canonical
	// eBPF counter pattern.
	maps := &MapSet{}
	m := NewHashMap(4, 8, 4)
	_ = m.Update([]byte{1, 0, 0, 0}, make([]byte, 8))
	id := maps.Add(m)
	vm := NewVM(maps)
	src := replaceAll(`
		stw [r10-4], 1
		mov r1, MAPID
		mov r2, r10
		sub r2, 4
		call 1
		jeq r0, 0, miss
		mov r1, 1
		xadddw [r0+0], r1
		mov r0, 0
		exit
	miss:
		mov r0, 1
		exit`, "MAPID", itoa(id))
	prog := MustAssemble(src)
	cfg := DefaultVerifierConfig(maps)
	if err := Verify(prog, cfg); err != nil {
		t.Fatalf("verifier rejected atomic map increment: %v", err)
	}
	_ = vm.Load(prog)
	for i := 0; i < 3; i++ {
		vm.ResetWindows()
		if got, err := vm.Run(nil); err != nil || got != 0 {
			t.Fatalf("run %d = %d,%v", i, got, err)
		}
	}
	v, _ := m.Lookup([]byte{1, 0, 0, 0})
	if v[0] != 3 {
		t.Fatalf("counter = %d, want 3", v[0])
	}
}

func TestVerifierAtomicRules(t *testing.T) {
	cfg := DefaultVerifierConfig(nil)
	bad := map[string]string{
		"uninit_target": "mov r1, 1\nxadddw [r10-8], r1\nmov r0, 0\nexit",
		"oob":           "stdw [r10-8], 0\nmov r1, 1\nxadddw [r10+8], r1\nmov r0, 0\nexit",
		"scalar_base":   "mov r2, 5\nmov r1, 1\nxadddw [r2+0], r1\nmov r0, 0\nexit",
		"cmpxchg_no_r0": "stdw [r10-8], 0\nmov r1, 1\ncmpxchgdw [r10-8], r1\nexit",
	}
	for name, src := range bad {
		t.Run(name, func(t *testing.T) {
			if err := Verify(MustAssemble(src), cfg); !errors.Is(err, ErrVerify) {
				t.Fatalf("accepted: %v", err)
			}
		})
	}
	good := "stdw [r10-8], 0\nmov r1, 1\nxfadddw [r10-8], r1\nmov r0, r1\nexit"
	if err := Verify(MustAssemble(good), cfg); err != nil {
		t.Fatalf("rejected good atomic: %v", err)
	}
}

func TestVerifierEndianRules(t *testing.T) {
	cfg := DefaultVerifierConfig(nil)
	if err := Verify(MustAssemble("mov r0, r10\nbe64 r0\nexit"), cfg); err == nil {
		t.Fatal("byte-swapped a pointer")
	}
	// Endian result is width-bounded: usable as a window index.
	cfg.Helpers = map[int32]HelperSig{
		HelperUserBase: {Name: "w", Ret: RetWindow, WindowSize: 1 << 17},
	}
	src := `
		call 64
		mov r7, r0
		ldxh r6, [r7+0]
		be16 r6              ; still [0,65535]
		add r7, r6
		ldxb r0, [r7+0]
		exit`
	if err := Verify(MustAssemble(src), cfg); err != nil {
		t.Fatalf("rejected bounded endian index: %v", err)
	}
}

func TestAtomicDisassembleRoundTrip(t *testing.T) {
	src := "stdw [r10-8], 0\nmov r1, 1\nxadddw [r10-8], r1\nbe32 r1\nmov r0, 0\nexit"
	prog := MustAssemble(src)
	text := Disassemble(prog)
	for _, want := range []string{"xadddw [r10-8], r1", "be32 r1"} {
		if !containsStr(text, want) {
			t.Fatalf("disassembly missing %q:\n%s", want, text)
		}
	}
	// Encode/decode roundtrip preserves atomics.
	back, err := Decode(Encode(prog))
	if err != nil {
		t.Fatal(err)
	}
	for i := range prog {
		if prog[i] != back[i] {
			t.Fatalf("insn %d changed: %+v vs %+v", i, prog[i], back[i])
		}
	}
}

func containsStr(s, sub string) bool { return indexOf(s, sub) >= 0 }
