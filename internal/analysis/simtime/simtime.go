// Package simtime flags raw integer literals flowing into sim.Time or
// sim.Duration positions in model packages — the unit bugs where a
// bare 4000 means picoseconds to the engine but nanoseconds to the
// author.
//
// Virtual time is picoseconds. A literal is fine when it *scales a
// unit* (4 * sim.Nanosecond, latency / 2) or when it defines a named
// constant whose name carries the unit. It is flagged when it is
// added to, subtracted from, or compared against sim time, passed as
// a sim.Time/sim.Duration argument, assigned to a sim time variable,
// or force-converted (sim.Duration(80)). Zero is always allowed — it
// is unit-free.
package simtime

import (
	"go/ast"
	"go/token"

	"hyperion/internal/analysis"
)

// Analyzer is the simtime pass.
var Analyzer = &analysis.Analyzer{
	Name: "simtime",
	Doc:  "flags unit-less integer literals used as sim.Time/sim.Duration",
	Run:  run,
}

const simPath = analysis.ModulePath + "/internal/sim"

func run(pass *analysis.Pass) error {
	// Unit hygiene applies to the harness layer too: experiment
	// definitions in internal/bench parameterize models with
	// durations, and a unit slip there corrupts tables just as surely.
	if pass.Layer == analysis.LayerExempt || pass.Path == simPath {
		return nil
	}
	for _, f := range pass.NonTestFiles() {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			if lit, ok := n.(*ast.BasicLit); ok && lit.Kind == token.INT {
				checkLit(pass, lit, stack)
			}
			stack = append(stack, n)
			return true
		})
	}
	return nil
}

func checkLit(pass *analysis.Pass, lit *ast.BasicLit, stack []ast.Node) {
	tv, ok := pass.TypesInfo.Types[lit]
	if !ok {
		return
	}
	var kind string
	switch {
	case analysis.IsNamed(tv.Type, simPath, "Time"):
		kind = "Time"
	case analysis.IsNamed(tv.Type, simPath, "Duration"):
		kind = "Duration"
	default:
		return
	}
	if tv.Value != nil && tv.Value.String() == "0" {
		return // zero is unit-free
	}
	// A literal whose nearest non-paren parent is *, / or % is scaling
	// a unit expression (4*sim.Nanosecond, latency/2) — allowed.
	for i := len(stack) - 1; i >= 0; i-- {
		if _, ok := stack[i].(*ast.ParenExpr); ok {
			continue
		}
		if p, ok := stack[i].(*ast.BinaryExpr); ok &&
			(p.Op == token.MUL || p.Op == token.QUO || p.Op == token.REM) {
			return
		}
		break
	}
	// A literal anywhere inside a const declaration is *defining* a
	// named constant — the name is where the unit lives.
	for i := len(stack) - 1; i >= 0; i-- {
		if gd, ok := stack[i].(*ast.GenDecl); ok && gd.Tok == token.CONST {
			return
		}
	}
	pass.Reportf(lit.Pos(),
		"raw literal %s has type sim.%s (picoseconds): scale a unit (%s*sim.Nanosecond) or name a constant so the unit is visible",
		lit.Value, kind, lit.Value)
}
