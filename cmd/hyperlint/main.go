// Command hyperlint checks the Hyperion tree against the determinism
// and datapath-discipline contract: the nodeterm, maprange, eventref
// and simtime analyzers (see internal/analysis).
//
// It runs two ways:
//
//	hyperlint ./...                      # standalone, loads packages itself
//	go vet -vettool=$(which hyperlint) ./...   # as a vet plugin
//
// The vet mode speaks the `go vet -vettool` protocol: -V=full for
// build caching, -flags for flag discovery, and a *.cfg JSON file
// describing one compilation unit per invocation. Diagnostics print as
// file:line:col: messages; the exit status is 1 when anything fired.
// Standalone mode additionally supports -json, which emits the full
// finding list as a JSON array on stdout for CI annotation tooling.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"
	"strings"

	"hyperion/internal/analysis"
	"hyperion/internal/analysis/checkers"
)

func main() {
	log := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "hyperlint: "+format+"\n", args...)
	}

	// The -V and -flags protocol handshakes arrive before normal flag
	// parsing can see them, so peek at argv directly.
	if len(os.Args) == 2 {
		switch {
		case os.Args[1] == "-V=full" || os.Args[1] == "--V=full":
			printVersion()
			return
		case os.Args[1] == "-flags" || os.Args[1] == "--flags":
			fmt.Println("[]")
			return
		case strings.HasSuffix(os.Args[1], ".cfg"):
			os.Exit(runVetUnit(os.Args[1], log))
		}
	}

	checks := flag.String("checks", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array on stdout (machine-readable)")
	flag.Parse()

	suite, err := checkers.Select(splitNonEmpty(*checks))
	if err != nil {
		log("%v", err)
		os.Exit(2)
	}
	if *list {
		for _, a := range suite {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		log("%v", err)
		os.Exit(2)
	}
	root, err := analysis.ModuleRoot(wd)
	if err != nil {
		log("%v", err)
		os.Exit(2)
	}
	loader := analysis.NewLoader(root)
	pkgs, err := loader.LoadPatterns(patterns...)
	if err != nil {
		log("%v", err)
		os.Exit(2)
	}
	exit := 0
	all := make([]jsonFinding, 0)
	for _, pkg := range pkgs {
		findings, err := analysis.RunAnalyzers(pkg, suite)
		if err != nil {
			log("%s: %v", pkg.Path, err)
			os.Exit(2)
		}
		for _, f := range findings {
			if *jsonOut {
				all = append(all, jsonFinding{
					File:    f.Position.Filename,
					Line:    f.Position.Line,
					Col:     f.Position.Column,
					Check:   f.Check,
					Message: f.Message,
				})
			} else {
				fmt.Printf("%s: [%s] %s\n", f.Position, f.Check, f.Message)
			}
			exit = 1
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(all); err != nil {
			log("%v", err)
			os.Exit(2)
		}
	}
	os.Exit(exit)
}

// jsonFinding is the -json output record: one diagnostic, stable field
// names for CI annotation tooling.
type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

func splitNonEmpty(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, ",")
}

// printVersion implements the -V=full handshake: the go command hashes
// the reply into its build cache key, so it must change whenever the
// binary does — hashing the executable itself guarantees that.
func printVersion() {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	f, err := os.Open(exe)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("%s version devel buildID=%x\n", exe, h.Sum(nil))
}

// vetConfig mirrors the JSON compilation-unit description the go
// command hands a vettool (x/tools unitchecker.Config).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVetUnit analyzes one compilation unit described by cfgFile and
// returns the process exit code.
func runVetUnit(cfgFile string, log func(string, ...any)) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		log("%v", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		log("cannot decode vet config %s: %v", cfgFile, err)
		return 2
	}

	// The go command drives every dependency through the tool so that
	// fact-based analyzers can propagate; hyperlint's checks are all
	// package-local, so dependency units need no analysis at all —
	// just the (empty) facts file the protocol expects.
	writeVetx := func() {
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
				log("%v", err)
			}
		}
	}
	if cfg.VetxOnly {
		writeVetx()
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				writeVetx()
				return 0
			}
			log("%v", err)
			return 2
		}
		files = append(files, f)
	}

	compilerImp := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		if importPath == "unsafe" {
			return types.Unsafe, nil
		}
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		return compilerImp.Import(path)
	})

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tconf := types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor("gc", runtime.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	tpkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx()
			return 0
		}
		log("type-checking %s: %v", cfg.ImportPath, err)
		return 2
	}

	pkg := &analysis.Package{
		Path:      cfg.ImportPath,
		Fset:      fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}
	findings, err := analysis.RunAnalyzers(pkg, checkers.All())
	if err != nil {
		log("%s: %v", cfg.ImportPath, err)
		return 2
	}
	writeVetx()
	exit := 0
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", f.Position, f.Check, f.Message)
		exit = 1
	}
	return exit
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
