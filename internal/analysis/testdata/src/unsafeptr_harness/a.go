// Package unsafeptr_harness is hyperlint golden-test input: the unsafe
// ban covers harness-layer code too — benchmarks must not sidestep the
// wire types either.
package unsafeptr_harness

import "unsafe" // want `unsafe is confined to internal/wire`

func addrOf(p *int) uintptr { return uintptr(unsafe.Pointer(p)) }
