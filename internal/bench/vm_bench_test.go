package bench

import (
	"testing"

	"hyperion/internal/ebpf"
)

// Benchmarks for the two VM backends over the E10 program suite. The
// compiled backend's acceptance bar is ≥3x over the interpreter with 0
// steady-state allocs (run with -benchmem).

func benchVM(b *testing.B, name string, compiled bool) {
	for _, p := range e10Programs {
		if p.name != name {
			continue
		}
		prog := ebpf.MustAssemble(p.src)
		vm := ebpf.NewVM(nil)
		if err := vm.Load(prog); err != nil {
			b.Fatal(err)
		}
		if compiled && !vm.Precompile() {
			b.Fatal("program did not compile")
		}
		ctx := make([]byte, E10CtxBytes)
		run := vm.RunInterpreted
		if compiled {
			run = vm.Run
		}
		if _, err := run(ctx); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := run(ctx); err != nil {
				b.Fatal(err)
			}
		}
		return
	}
	b.Fatalf("unknown E10 program %q", name)
}

func BenchmarkVM_Interp(b *testing.B) {
	for _, p := range e10Programs {
		b.Run(p.name, func(b *testing.B) { benchVM(b, p.name, false) })
	}
}

func BenchmarkVM_Compiled(b *testing.B) {
	for _, p := range e10Programs {
		b.Run(p.name, func(b *testing.B) { benchVM(b, p.name, true) })
	}
}
