package gofront

import (
	"fmt"
	"go/ast"
	"strconv"
	"strings"
)

// Type is the frontend's type model: fixed-size integers, fixed-size
// arrays, packed structs (with optional explicit field offsets), and
// pointers. Nothing here has a dynamic size, which is what lets every
// access lower to a constant displacement plus at most one scaled
// index.
type Type interface {
	Size() int
	String() string
}

// IntType is a fixed-width integer. Bits ∈ {8, 16, 32, 64}.
type IntType struct {
	Bits   int
	Signed bool
}

func (t IntType) Size() int { return t.Bits / 8 }
func (t IntType) String() string {
	if t.Signed {
		return fmt.Sprintf("int%d", t.Bits)
	}
	return fmt.Sprintf("uint%d", t.Bits)
}

// PtrType is a pointer to a sized value; it only arises as a helper
// argument (&local) or a helper return (*uint64 map values).
type PtrType struct{ Elem Type }

func (t PtrType) Size() int      { return 8 }
func (t PtrType) String() string { return "*" + t.Elem.String() }

// ArrayType is a fixed-length array.
type ArrayType struct {
	Elem Type
	N    int
}

func (t ArrayType) Size() int      { return t.N * t.Elem.Size() }
func (t ArrayType) String() string { return fmt.Sprintf("[%d]%s", t.N, t.Elem) }

// Field is one struct field with its resolved byte offset.
type Field struct {
	Name string
	Off  int
	Type Type
}

// StructType is a packed struct: fields lay out sequentially in
// declaration order unless a `hyperion:"offset=N"` tag pins them.
// Explicit offsets may overlap — that is the union escape hatch for
// wire formats whose variants share a header (e.g. B+ tree node
// pages).
type StructType struct {
	Name   string
	Fields []Field
	size   int
}

func (t *StructType) Size() int      { return t.size }
func (t *StructType) String() string { return t.Name }

func (t *StructType) field(name string) *Field {
	for i := range t.Fields {
		if t.Fields[i].Name == name {
			return &t.Fields[i]
		}
	}
	return nil
}

// intTypes maps source type names to the frontend's integer types.
// byte is uint8's alias, as in Go.
var intTypes = map[string]IntType{
	"uint8":  {Bits: 8},
	"byte":   {Bits: 8},
	"uint16": {Bits: 16},
	"uint32": {Bits: 32},
	"uint64": {Bits: 64},
	"int8":   {Bits: 8, Signed: true},
	"int16":  {Bits: 16, Signed: true},
	"int32":  {Bits: 32, Signed: true},
	"int64":  {Bits: 64, Signed: true},
}

// resolveType converts a type expression into the frontend model.
// structs must be declared as named types; anonymous structs are
// rejected to keep layout declarations in one place.
func (c *compiler) resolveType(e ast.Expr) (Type, bool) {
	switch t := e.(type) {
	case *ast.Ident:
		if it, ok := intTypes[t.Name]; ok {
			return it, true
		}
		switch t.Name {
		case "string":
			c.errs.add(t.Pos(), RuleString, "string values are outside the restricted subset (no dynamic memory)")
			return nil, false
		case "int", "uint", "uintptr":
			c.errs.add(t.Pos(), RuleTypes, "%s has platform-dependent size; use a fixed-width type (uint64, uint32, ...)", t.Name)
			return nil, false
		case "float32", "float64", "complex64", "complex128":
			c.errs.add(t.Pos(), RuleTypes, "%s is outside the restricted subset (integer types only)", t.Name)
			return nil, false
		case "bool":
			c.errs.add(t.Pos(), RuleTypes, "bool is outside the restricted subset; use uint8 with 0/1")
			return nil, false
		}
		if st, ok := c.structs[t.Name]; ok {
			return st, true
		}
		c.errs.add(t.Pos(), RuleTypes, "unknown type %s", t.Name)
		return nil, false
	case *ast.StarExpr:
		elem, ok := c.resolveType(t.X)
		if !ok {
			return nil, false
		}
		return PtrType{Elem: elem}, true
	case *ast.ArrayType:
		if t.Len == nil {
			c.errs.add(t.Pos(), RuleHeap, "slices are dynamically sized; declare a fixed-length array [N]T")
			return nil, false
		}
		n, ok := c.constExpr(t.Len)
		if !ok {
			return nil, false
		}
		if n <= 0 || n > 1<<20 {
			c.errs.add(t.Pos(), RuleTypes, "array length %d out of range", n)
			return nil, false
		}
		elem, ok := c.resolveType(t.Elt)
		if !ok {
			return nil, false
		}
		return ArrayType{Elem: elem, N: int(n)}, true
	case *ast.InterfaceType:
		c.errs.add(t.Pos(), RuleIface, "interface types are outside the restricted subset (no dynamic dispatch)")
		return nil, false
	case *ast.MapType:
		c.errs.add(t.Pos(), RuleHeap, "Go maps are heap-allocated; use the declared map intrinsics instead")
		return nil, false
	case *ast.ChanType:
		c.errs.add(t.Pos(), RuleConc, "channels are outside the restricted subset")
		return nil, false
	case *ast.FuncType:
		c.errs.add(t.Pos(), RuleTypes, "function types are outside the restricted subset")
		return nil, false
	case *ast.StructType:
		c.errs.add(t.Pos(), RuleTypes, "anonymous structs are not supported; declare a named type")
		return nil, false
	}
	c.errs.add(e.Pos(), RuleTypes, "unsupported type expression")
	return nil, false
}

// layoutStruct computes packed field offsets for a struct declaration,
// honoring `hyperion:"offset=N"` tags. Blank fields consume space
// (padding) but are not addressable.
func (c *compiler) layoutStruct(name string, st *ast.StructType) *StructType {
	out := &StructType{Name: name}
	next := 0
	for _, f := range st.Fields.List {
		ft, ok := c.resolveType(f.Type)
		if !ok {
			continue
		}
		off := next
		if f.Tag != nil {
			if v, ok2 := tagOffset(f.Tag.Value); ok2 {
				off = v
			} else if strings.Contains(f.Tag.Value, "hyperion") {
				c.errs.add(f.Tag.Pos(), RuleDirect, "malformed struct tag %s; expected `hyperion:\"offset=N\"`", f.Tag.Value)
			}
		}
		if len(f.Names) == 0 {
			c.errs.add(f.Pos(), RuleTypes, "embedded fields are not supported")
			continue
		}
		for _, id := range f.Names {
			if id.Name != "_" {
				out.Fields = append(out.Fields, Field{Name: id.Name, Off: off, Type: ft})
			}
			off += ft.Size()
		}
		next = off
		if off > out.size {
			out.size = off
		}
	}
	return out
}

// tagOffset parses `hyperion:"offset=N"` from a raw struct tag.
func tagOffset(raw string) (int, bool) {
	tag, err := strconv.Unquote(raw)
	if err != nil {
		return 0, false
	}
	val, ok := lookupTag(tag, "hyperion")
	if !ok {
		return 0, false
	}
	rest, found := strings.CutPrefix(val, "offset=")
	if !found {
		return 0, false
	}
	n, err := strconv.Atoi(rest)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// lookupTag is reflect.StructTag.Get without importing reflect.
func lookupTag(tag, key string) (string, bool) {
	for tag != "" {
		tag = strings.TrimLeft(tag, " ")
		i := strings.IndexByte(tag, ':')
		if i <= 0 {
			break
		}
		name := tag[:i]
		rest := tag[i+1:]
		if len(rest) < 2 || rest[0] != '"' {
			break
		}
		end := strings.IndexByte(rest[1:], '"')
		if end < 0 {
			break
		}
		val := rest[1 : 1+end]
		tag = rest[2+end:]
		if name == key {
			return val, true
		}
	}
	return "", false
}
