package nodeterm_test

import (
	"testing"

	"hyperion/internal/analysis/analysistest"
	"hyperion/internal/analysis/nodeterm"
)

func TestNodeterm(t *testing.T) {
	analysistest.Run(t, "../testdata", nodeterm.Analyzer,
		"nodeterm", "nodeterm_harness", "nodeterm_exempt")
}
