// Package unsafeptr confines package unsafe to internal/wire. The wire
// package's fixed-array endian decode is the one place Hyperion trades
// memory safety for speed, and it pays for the privilege with a
// build-tagged safe fallback, a big-endian init guard, and aliasing
// property tests. Everywhere else an unsafe.Pointer is a latent
// correctness bug the determinism contract cannot see, so any other
// import of unsafe — model or harness layer — is flagged. Code with a
// proven need can annotate the import with
// //hyperlint:allow(unsafeptr) and a justification.
package unsafeptr

import (
	"strings"

	"hyperion/internal/analysis"
)

// Analyzer is the unsafeptr pass.
var Analyzer = &analysis.Analyzer{
	Name: "unsafeptr",
	Doc:  "flags imports of unsafe outside internal/wire",
	Run:  run,
}

// wirePath is the only package allowed to import unsafe.
const wirePath = analysis.ModulePath + "/internal/wire"

func run(pass *analysis.Pass) error {
	if pass.Layer == analysis.LayerExempt {
		return nil
	}
	if pass.Path == wirePath || pass.Path == "internal/wire" {
		return nil
	}
	for _, f := range pass.NonTestFiles() {
		for _, imp := range f.Imports {
			if strings.Trim(imp.Path.Value, `"`) != "unsafe" {
				continue
			}
			pass.Reportf(imp.Pos(),
				"unsafe is confined to internal/wire: decode through the wire.BE*/LE* fixed-array types instead")
		}
	}
	return nil
}
