package colfmt

import (
	"fmt"
	"testing"

	"hyperion/internal/nvme"
	"hyperion/internal/seg"
	"hyperion/internal/sim"
)

func newView(t testing.TB) *seg.SyncView {
	t.Helper()
	eng := sim.NewEngine(1)
	cfg := nvme.DefaultConfig("nvme")
	cfg.Blocks = 1 << 20
	host := nvme.NewHost(nvme.New(eng, cfg), nil)
	scfg := seg.DefaultConfig()
	scfg.DRAMBytes = 64 << 20
	scfg.CheckpointEvery = 0
	return seg.NewSyncView(seg.New(eng, scfg, []*nvme.Host{host}))
}

func demoSchema() Schema {
	return Schema{Columns: []Column{
		{Name: "ts", Type: TypeInt64},
		{Name: "value", Type: TypeInt64},
		{Name: "tag", Type: TypeString},
	}}
}

func writeDemo(t testing.TB, v *seg.SyncView, rows, perGroup int) seg.ObjectID {
	w := NewWriter(v, demoSchema(), perGroup)
	for i := 0; i < rows; i++ {
		if err := w.Append(int64(i), int64(i%97), fmt.Sprintf("tag-%d", i%10)); err != nil {
			t.Fatal(err)
		}
	}
	id := seg.OID(700, 1)
	if err := w.Close(id, true); err != nil {
		t.Fatal(err)
	}
	return id
}

func TestWriteReadRoundTrip(t *testing.T) {
	v := newView(t)
	id := writeDemo(t, v, 1000, 128)
	r, err := OpenReader(v, id)
	if err != nil {
		t.Fatal(err)
	}
	if r.Groups() != 8 { // ceil(1000/128)
		t.Fatalf("groups = %d, want 8", r.Groups())
	}
	total := 0
	for i := 0; i < r.Groups(); i++ {
		b, err := r.ReadGroup(i)
		if err != nil {
			t.Fatal(err)
		}
		for row := 0; row < b.Rows(); row++ {
			global := total + row
			if b.Int64s["ts"][row] != int64(global) {
				t.Fatalf("ts[%d] = %d", global, b.Int64s["ts"][row])
			}
			if b.Strings["tag"][row] != fmt.Sprintf("tag-%d", global%10) {
				t.Fatalf("tag[%d] = %s", global, b.Strings["tag"][row])
			}
		}
		total += b.Rows()
	}
	if total != 1000 {
		t.Fatalf("rows = %d", total)
	}
}

func TestSchemaRecovered(t *testing.T) {
	v := newView(t)
	id := writeDemo(t, v, 10, 4)
	r, err := OpenReader(v, id)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Schema.Columns) != 3 || r.Schema.Columns[2].Name != "tag" || r.Schema.Columns[2].Type != TypeString {
		t.Fatalf("schema = %+v", r.Schema)
	}
}

func TestScanWithPushdown(t *testing.T) {
	v := newView(t)
	id := writeDemo(t, v, 10000, 1000) // ts is monotonically increasing
	r, err := OpenReader(v, id)
	if err != nil {
		t.Fatal(err)
	}
	var hits []int64
	if err := r.ScanInt64("ts", 2500, 3499, func(b *Batch, row int) bool {
		hits = append(hits, b.Int64s["ts"][row])
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1000 {
		t.Fatalf("hits = %d, want 1000", len(hits))
	}
	if hits[0] != 2500 || hits[len(hits)-1] != 3499 {
		t.Fatalf("range = [%d,%d]", hits[0], hits[len(hits)-1])
	}
	// ts spans groups of 1000: range [2500,3499] touches groups 2 and 3
	// only; the other 8 skip via min/max.
	if r.GroupsSkipped != 8 {
		t.Fatalf("skipped = %d, want 8", r.GroupsSkipped)
	}
	if r.GroupsRead != 2 {
		t.Fatalf("read = %d, want 2", r.GroupsRead)
	}
}

func TestScanNonFirstColumnNoPushdown(t *testing.T) {
	v := newView(t)
	id := writeDemo(t, v, 2000, 500)
	r, err := OpenReader(v, id)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	if err := r.ScanInt64("value", 0, 0, func(b *Batch, row int) bool {
		count++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if count == 0 {
		t.Fatal("no rows matched value == 0")
	}
	if r.GroupsSkipped != 0 {
		t.Fatal("pushdown should not fire for non-first column")
	}
	// Early stop works.
	n := 0
	_ = r.ScanInt64("ts", 0, 1999, func(b *Batch, row int) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestScanErrors(t *testing.T) {
	v := newView(t)
	id := writeDemo(t, v, 10, 4)
	r, _ := OpenReader(v, id)
	if err := r.ScanInt64("missing", 0, 1, nil); err == nil {
		t.Fatal("scan of missing column succeeded")
	}
	if err := r.ScanInt64("tag", 0, 1, nil); err == nil {
		t.Fatal("scan of string column as int64 succeeded")
	}
}

func TestAppendRowTypeMismatch(t *testing.T) {
	b := NewBatch(demoSchema())
	if err := b.AppendRow("wrong", int64(1), "x"); err == nil {
		t.Fatal("type mismatch accepted")
	}
	if err := b.AppendRow(int64(1)); err == nil {
		t.Fatal("arity mismatch accepted")
	}
}

func TestOpenReaderRejectsGarbage(t *testing.T) {
	v := newView(t)
	id := seg.OID(700, 9)
	_, _ = v.Alloc(id, 4096, true, seg.HintAuto)
	_ = v.WriteAt(id, 0, []byte{1, 2, 3, 4})
	if _, err := OpenReader(v, id); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestPushdownSavesDeviceReads(t *testing.T) {
	v := newView(t)
	id := writeDemo(t, v, 20000, 1000)
	r, _ := OpenReader(v, id)
	v.TakeCost()
	before := v.BytesRead
	_ = r.ScanInt64("ts", 100, 150, func(b *Batch, row int) bool { return true })
	selective := v.BytesRead - before

	r2, _ := OpenReader(v, id)
	before = v.BytesRead
	_ = r2.ScanInt64("ts", 0, 19999, func(b *Batch, row int) bool { return true })
	full := v.BytesRead - before
	if selective*5 > full {
		t.Fatalf("pushdown read %d bytes vs full %d: not selective", selective, full)
	}
}

func BenchmarkScanPushdown(b *testing.B) {
	v := newView(b)
	id := writeDemo(b, v, 100000, 4096)
	r, err := OpenReader(v, id)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		if err := r.ScanInt64("ts", 50000, 50100, func(bt *Batch, row int) bool {
			n++
			return true
		}); err != nil {
			b.Fatal(err)
		}
	}
}
