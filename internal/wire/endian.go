package wire

// Offset accessors: read or write a fixed-endian field at a byte
// offset in a buffer. These compile to the same code under both the
// unsafe and wiresafe builds — only the field types' method bodies
// differ — and panic if fewer than the field's bytes remain, exactly
// like an out-of-range slice index.

// BE16At decodes a big-endian uint16 at b[off:].
func BE16At(b []byte, off int) uint16 { return (*BE16)(b[off:]).Uint16() }

// PutBE16At encodes v at b[off:].
func PutBE16At(b []byte, off int, v uint16) { *(*BE16)(b[off:]) = PutBE16(v) }

// BE32At decodes a big-endian uint32 at b[off:].
func BE32At(b []byte, off int) uint32 { return (*BE32)(b[off:]).Uint32() }

// PutBE32At encodes v at b[off:].
func PutBE32At(b []byte, off int, v uint32) { *(*BE32)(b[off:]) = PutBE32(v) }

// BE64At decodes a big-endian uint64 at b[off:].
func BE64At(b []byte, off int) uint64 { return (*BE64)(b[off:]).Uint64() }

// PutBE64At encodes v at b[off:].
func PutBE64At(b []byte, off int, v uint64) { *(*BE64)(b[off:]) = PutBE64(v) }

// LE16At decodes a little-endian uint16 at b[off:].
func LE16At(b []byte, off int) uint16 { return (*LE16)(b[off:]).Uint16() }

// PutLE16At encodes v at b[off:].
func PutLE16At(b []byte, off int, v uint16) { *(*LE16)(b[off:]) = PutLE16(v) }

// LE32At decodes a little-endian uint32 at b[off:].
func LE32At(b []byte, off int) uint32 { return (*LE32)(b[off:]).Uint32() }

// PutLE32At encodes v at b[off:].
func PutLE32At(b []byte, off int, v uint32) { *(*LE32)(b[off:]) = PutLE32(v) }

// LE64At decodes a little-endian uint64 at b[off:].
func LE64At(b []byte, off int) uint64 { return (*LE64)(b[off:]).Uint64() }

// PutLE64At encodes v at b[off:].
func PutLE64At(b []byte, off int, v uint64) { *(*LE64)(b[off:]) = PutLE64(v) }
