package corfu

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"hyperion/internal/nvme"
	"hyperion/internal/seg"
	"hyperion/internal/sim"
)

func newView(t testing.TB) *seg.SyncView {
	t.Helper()
	eng := sim.NewEngine(1)
	cfg := nvme.DefaultConfig("nvme")
	cfg.Blocks = 1 << 20
	host := nvme.NewHost(nvme.New(eng, cfg), nil)
	scfg := seg.DefaultConfig()
	scfg.DRAMBytes = 64 << 20
	scfg.CheckpointEvery = 0
	return seg.NewSyncView(seg.New(eng, scfg, []*nvme.Host{host}))
}

func newLog(t testing.TB, unitCount, entrySize int) (*seg.SyncView, *Log) {
	t.Helper()
	v := newView(t)
	var units []*Unit
	for i := 0; i < unitCount; i++ {
		u, err := NewUnit(v, seg.OID(uint64(400+i), 0), entrySize, true)
		if err != nil {
			t.Fatal(err)
		}
		units = append(units, u)
	}
	l, err := NewLog(&Sequencer{}, units)
	if err != nil {
		t.Fatal(err)
	}
	return v, l
}

func TestAppendReadRoundTrip(t *testing.T) {
	_, l := newLog(t, 4, 512)
	var want [][]byte
	for i := 0; i < 100; i++ {
		data := []byte(fmt.Sprintf("entry-%03d", i))
		pos, err := l.Append(data)
		if err != nil {
			t.Fatal(err)
		}
		if pos != uint64(i) {
			t.Fatalf("pos = %d, want %d", pos, i)
		}
		want = append(want, data)
	}
	for i, w := range want {
		got, err := l.Read(uint64(i))
		if err != nil || !bytes.Equal(got, w) {
			t.Fatalf("Read(%d) = %q,%v", i, got, err)
		}
	}
}

func TestWriteOnce(t *testing.T) {
	_, l := newLog(t, 2, 128)
	pos, err := l.Append([]byte("first"))
	if err != nil {
		t.Fatal(err)
	}
	u, slot := l.unitFor(pos)
	if err := u.Write(slot, []byte("second")); !errors.Is(err, ErrWritten) {
		t.Fatalf("rewrite err = %v, want ErrWritten", err)
	}
}

func TestReadUnwrittenAndHoles(t *testing.T) {
	_, l := newLog(t, 2, 128)
	if _, err := l.Read(5); !errors.Is(err, ErrUnwritten) {
		t.Fatalf("unwritten err = %v", err)
	}
	// Simulate a crashed appender: reserve a position but never write.
	hole := l.Seq.Next(1)
	_, _ = l.Append([]byte("after-hole"))
	if err := l.Fill(hole); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Read(hole); !errors.Is(err, ErrFilled) {
		t.Fatalf("filled err = %v", err)
	}
	// Fill of a written position must fail.
	if err := l.Fill(hole + 1); !errors.Is(err, ErrWritten) {
		t.Fatalf("fill written err = %v", err)
	}
}

func TestTrim(t *testing.T) {
	_, l := newLog(t, 2, 128)
	for i := 0; i < 10; i++ {
		_, _ = l.Append([]byte{byte(i)})
	}
	if err := l.Trim(5); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Read(3); !errors.Is(err, ErrTrimmed) {
		t.Fatalf("trimmed err = %v", err)
	}
	if got, err := l.Read(7); err != nil || got[0] != 7 {
		t.Fatalf("beyond trim = %v,%v", got, err)
	}
}

func TestStripingBalancesUnits(t *testing.T) {
	_, l := newLog(t, 4, 128)
	for i := 0; i < 400; i++ {
		_, _ = l.Append([]byte("x"))
	}
	for i, u := range l.units {
		if u.Writes != 100 {
			t.Fatalf("unit %d writes = %d, want 100", i, u.Writes)
		}
	}
}

func TestEntrySizeEnforced(t *testing.T) {
	_, l := newLog(t, 1, 64)
	if _, err := l.Append(make([]byte, 65)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v", err)
	}
}

func TestSequencerBatching(t *testing.T) {
	s := &Sequencer{}
	p1 := s.Next(8)
	p2 := s.Next(1)
	if p1 != 0 || p2 != 8 {
		t.Fatalf("batch positions %d %d", p1, p2)
	}
	if s.Issued != 9 {
		t.Fatalf("issued = %d", s.Issued)
	}
}

func TestSequencerRecover(t *testing.T) {
	_, l := newLog(t, 3, 128)
	for i := 0; i < 50; i++ {
		_, _ = l.Append([]byte("e"))
	}
	fresh := &Sequencer{}
	if err := fresh.Recover(l); err != nil {
		t.Fatal(err)
	}
	if fresh.Tail() != 50 {
		t.Fatalf("recovered tail = %d, want 50", fresh.Tail())
	}
	// Recovery must skip over a trailing hole within a stripe.
	hole := l.Seq.Next(1)
	_, _ = l.Append([]byte("after"))
	_ = hole
	fresh2 := &Sequencer{}
	if err := fresh2.Recover(l); err != nil {
		t.Fatal(err)
	}
	if fresh2.Tail() != 52 {
		t.Fatalf("recovered tail with hole = %d, want 52", fresh2.Tail())
	}
}

func TestUnitReopen(t *testing.T) {
	v := newView(t)
	u, err := NewUnit(v, seg.OID(400, 0), 256, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 20; i++ {
		if err := u.Write(i, []byte(fmt.Sprintf("slot-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	u2, err := OpenUnit(v, seg.OID(400, 0))
	if err != nil {
		t.Fatal(err)
	}
	got, err := u2.Read(7)
	if err != nil || string(got) != "slot-7" {
		t.Fatalf("reopened read = %q,%v", got, err)
	}
	// Write-once survives reopen.
	if err := u2.Write(7, []byte("x")); !errors.Is(err, ErrWritten) {
		t.Fatalf("rewrite after reopen err = %v", err)
	}
}

func TestChunkGrowth(t *testing.T) {
	v, l := newLog(t, 1, 4096)
	_ = v
	// 4 KB entries + header → >1 chunk after ~255 appends.
	for i := 0; i < 600; i++ {
		if _, err := l.Append(make([]byte, 4096)); err != nil {
			t.Fatal(err)
		}
	}
	if len(l.units[0].chunks) < 2 {
		t.Fatalf("chunks = %d, want ≥2", len(l.units[0].chunks))
	}
	if _, err := l.Read(599); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAppend(b *testing.B) {
	v := newView(b)
	var units []*Unit
	for i := 0; i < 4; i++ {
		u, err := NewUnit(v, seg.OID(uint64(400+i), 0), 512, true)
		if err != nil {
			b.Fatal(err)
		}
		units = append(units, u)
	}
	l, _ := NewLog(&Sequencer{}, units)
	data := make([]byte, 512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Append(data); err != nil {
			b.Fatal(err)
		}
	}
}
