// Package nodeterm_exempt is hyperlint golden-test input: the _exempt
// suffix places it outside the determinism contract, so nothing here
// is diagnosed.
package nodeterm_exempt

import "time"

func free() time.Time {
	time.Sleep(time.Millisecond)
	return time.Now()
}
