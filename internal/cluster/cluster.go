// Package cluster explores the paper's §4 question — "how should one
// build CPU-free distributed applications ... over multiple DPUs?" — in
// the C1/C2 styles of §2.4: a rack of self-hosting Hyperion DPUs, each
// serving a KV shard from its own SSDs, with MICA-style client-driven
// request routing (the client hashes the key to the owning DPU; no
// coordinator in the path) and R-way replication for fault tolerance.
package cluster

import (
	"errors"
	"fmt"

	"hyperion/internal/core"
	"hyperion/internal/fault"
	"hyperion/internal/netsim"
	"hyperion/internal/rpc"
	"hyperion/internal/seg"
	"hyperion/internal/sim"
	"hyperion/internal/storage/kvssd"
	"hyperion/internal/telemetry"
	"hyperion/internal/transport"
	"hyperion/internal/wire"
)

// KV method names served by every DPU.
const (
	MethodGet = "ckv.get"
	MethodPut = "ckv.put"
)

// Wire capsules: a get capsule is the raw key; a put capsule is a
// big-endian key length followed by key then value. Capsules are
// pooled wire.Bufs refcounted per rpc attempt, so a router can issue
// replicated writes and read failovers from one encoding.
const (
	putKeyLenOff = 0
	putKeyOff    = 4
)

func encodePut(p *wire.Pool, key, value []byte) *wire.Buf {
	b := p.Get(putKeyOff + len(key) + len(value))
	bs := b.Bytes()
	wire.PutBE32At(bs, putKeyLenOff, uint32(len(key)))
	copy(bs[putKeyOff:], key)
	copy(bs[putKeyOff+len(key):], value)
	return b
}

// decodePut returns views that alias the capsule; they are valid only
// while the capsule reference is held.
func decodePut(bs []byte) (key, value []byte) {
	klen := int(wire.BE32At(bs, putKeyLenOff))
	return bs[putKeyOff : putKeyOff+klen], bs[putKeyOff+klen:]
}

// Errors.
var (
	ErrNoReplicas = errors.New("cluster: all replicas down")
	ErrNotFound   = errors.New("cluster: key not found")
)

// Node is one DPU serving a shard.
type Node struct {
	DPU  *core.DPU
	KV   *kvssd.KV
	down bool

	Gets, Puts int64
}

// Cluster is a set of KV-serving DPUs on one fabric.
type Cluster struct {
	Eng   *sim.Engine
	Net   *netsim.Network
	Nodes []*Node
	// Replicas is the copies kept per key (including the primary).
	Replicas int
}

// New boots n DPUs, each with a durable B+-tree-indexed KV shard, and
// registers the KV service on their control planes.
func New(eng *sim.Engine, net *netsim.Network, n, replicas int) (*Cluster, error) {
	if replicas < 1 || replicas > n {
		return nil, fmt.Errorf("cluster: replicas %d out of range for %d nodes", replicas, n)
	}
	c := &Cluster{Eng: eng, Net: net, Replicas: replicas}
	for i := 0; i < n; i++ {
		cfg := core.DefaultConfig(fmt.Sprintf("dpu%d", i))
		cfg.NVMe.Blocks = 1 << 20
		cfg.Seg.DRAMBytes = 64 << 20
		cfg.Seg.CheckpointEvery = 0
		d, _, err := core.Boot(eng, net, cfg)
		if err != nil {
			return nil, err
		}
		kv, err := kvssd.Create(d.View, seg.OID(0x4B, 0), kvssd.BackendBTree, true)
		if err != nil {
			return nil, err
		}
		node := &Node{DPU: d, KV: kv}
		c.Nodes = append(c.Nodes, node)
		c.serve(node)
	}
	return c, nil
}

func (c *Cluster) serve(n *Node) {
	d := n.DPU
	d.CtrlSrv.Handle(MethodGet, func(arg any, respond func(any, int, error)) {
		if n.down {
			return // dead nodes do not answer; clients time out
		}
		b, ok := arg.(*wire.Buf)
		if !ok {
			respond(nil, 0, fmt.Errorf("cluster: bad get args %T", arg))
			return
		}
		n.Gets++
		// The key aliases the capsule, which is valid for the handler's
		// synchronous extent; KV.Get consumes it before returning.
		val, found, err := n.KV.Get(b.Bytes())
		d.View.Complete(c.Eng, "ckv.get", func() {
			if err != nil {
				respond(nil, 64, err)
				return
			}
			if !found {
				respond(nil, 64, ErrNotFound)
				return
			}
			respond(val, len(val)+64, nil)
		})
	})
	d.CtrlSrv.Handle(MethodPut, func(arg any, respond func(any, int, error)) {
		if n.down {
			return
		}
		b, ok := arg.(*wire.Buf)
		if !ok || b.Len() < putKeyOff {
			respond(nil, 0, fmt.Errorf("cluster: bad put args %T", arg))
			return
		}
		key, value := decodePut(b.Bytes())
		n.Puts++
		err := n.KV.Put(key, value)
		d.View.Complete(c.Eng, "ckv.put", func() { respond(true, 64, err) })
	})
}

// SetRecorder arms the telemetry plane on every node's DPU (network,
// NVMe, PCIe, store, RPC server). Disarmed (nil) the datapath is
// bit-identical to the unhooked cluster.
func (c *Cluster) SetRecorder(rec *telemetry.Recorder) {
	for _, n := range c.Nodes {
		n.DPU.SetRecorder(rec)
	}
}

// MarkDown simulates a node failure (it stops answering).
func (c *Cluster) MarkDown(i int) { c.Nodes[i].down = true }

// MarkUp revives a node.
func (c *Cluster) MarkUp(i int) { c.Nodes[i].down = false }

// Crashes reports how many crash windows ScheduleCrashes installed.
type Crashes struct {
	Windows int
}

// ScheduleCrashes installs deterministic node crash/restart cycles
// derived from the plan (kind Crash): node picking and window timing
// both come from the plan's seeded stream, each window marks one node
// down at Start and back up at End. The schedule is precomputed and
// bounded by horizon, so it adds a finite set of engine events. A nil
// or zero-rate plan installs nothing.
func (c *Cluster) ScheduleCrashes(plan *fault.Plan, horizon sim.Time, meanUp, downFor sim.Duration) Crashes {
	windows := plan.Windows(fault.Crash, horizon, meanUp, downFor)
	for _, w := range windows {
		node := plan.Pick(len(c.Nodes))
		c.Eng.At(w.Start, "cluster.crash", func() { c.MarkDown(node) })
		c.Eng.At(w.End, "cluster.restart", func() { c.MarkUp(node) })
	}
	return Crashes{Windows: len(windows)}
}

// shardOf hashes a key to its primary node.
func shardOf(key []byte, n int) int {
	h := uint64(14695981039346656037)
	for _, b := range key {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return int(h % uint64(n))
}

// ReplicaSet returns the node indexes holding a key (primary first).
func (c *Cluster) ReplicaSet(key []byte) []int {
	p := shardOf(key, len(c.Nodes))
	out := make([]int, 0, c.Replicas)
	for j := 0; j < c.Replicas; j++ {
		out = append(out, (p+j)%len(c.Nodes))
	}
	return out
}

// Router is the client-side: it owns the shard map and drives requests
// straight to the owning DPU (client-driven routing; the "smartness"
// lives with the client, per passive disaggregation).
type Router struct {
	c   *Cluster
	cli *rpc.Client
	// FailoverTimeout bounds how long to wait before trying the next
	// replica on reads.
	FailoverTimeout sim.Duration

	rec *telemetry.Recorder

	caps    *wire.Pool
	putFree []*putCtx
	getFree []*getCtx

	Routed, Failovers int64
}

// SetRecorder arms the telemetry plane on the router and its RPC
// client: each Put/Get becomes one request-scoped trace (a fresh
// RequestID propagated through rpc → transport → netsim) with an
// end-to-end span under layer "cluster". Disarmed (nil) the routing
// path is bit-identical to the unhooked router.
func (r *Router) SetRecorder(rec *telemetry.Recorder) {
	r.rec = rec
	r.cli.SetRecorder(rec)
}

// NewRouter attaches a client host to the fabric.
func NewRouter(c *Cluster, name netsim.Addr) (*Router, error) {
	nic, err := c.Net.Attach(name)
	if err != nil {
		return nil, err
	}
	cli := rpc.NewClient(c.Eng, transport.New(c.Eng, transport.RDMA, nic))
	cli.Timeout = 2 * sim.Millisecond
	return &Router{c: c, cli: cli, FailoverTimeout: 2 * sim.Millisecond, caps: wire.NewPool(64)}, nil
}

// putCtx fans one replicated write out to every replica with a single
// prebound completion callback; instances cycle through the router's
// free list. It holds the capsule's base reference until every
// replica's rpc call resolves, so retries and stragglers stay valid.
type putCtx struct {
	r        *Router
	capsule  *wire.Buf
	pending  int
	firstErr error
	span     telemetry.RequestID
	start    sim.Time
	cb       func(error)
	doneFn   func(val any, err error)
}

func (r *Router) getPut() *putCtx {
	if n := len(r.putFree); n > 0 {
		p := r.putFree[n-1]
		r.putFree = r.putFree[:n-1]
		return p
	}
	p := &putCtx{r: r}
	p.doneFn = p.done
	return p
}

func (p *putCtx) done(_ any, err error) {
	if err != nil && p.firstErr == nil {
		p.firstErr = err
	}
	p.pending--
	if p.pending > 0 {
		return
	}
	r := p.r
	if r.rec != nil {
		r.rec.Span("cluster", "put", p.span, p.start, r.c.Eng.Now())
	}
	p.capsule.Release()
	cb, firstErr := p.cb, p.firstErr
	*p = putCtx{r: r, doneFn: p.doneFn}
	r.putFree = append(r.putFree, p)
	cb(firstErr)
}

// Put writes to every replica; cb fires when all acks (or any error)
// arrive.
func (r *Router) Put(key, value []byte, cb func(error)) {
	n := len(r.c.Nodes)
	primary := shardOf(key, n)
	r.Routed++
	span := r.rec.NewRequest()
	p := r.getPut()
	p.capsule = encodePut(r.caps, key, value)
	p.pending = r.c.Replicas
	p.span = span
	p.start = r.c.Eng.Now()
	p.cb = cb
	bytes := len(key) + len(value) + 64
	for j := 0; j < r.c.Replicas; j++ {
		addr := r.c.Nodes[(primary+j)%n].DPU.ControlAddr()
		r.cli.CallSpan(addr, MethodPut, p.capsule, bytes, span, p.doneFn)
	}
}

// getCtx walks the replica set of one read with a prebound completion
// callback, failing over on timeouts; instances cycle through the
// router's free list.
type getCtx struct {
	r       *Router
	capsule *wire.Buf
	primary int
	attempt int
	bytes   int
	span    telemetry.RequestID
	start   sim.Time
	cb      func([]byte, error)
	doneFn  func(val any, err error)
}

func (r *Router) getGet() *getCtx {
	if n := len(r.getFree); n > 0 {
		g := r.getFree[n-1]
		r.getFree = r.getFree[:n-1]
		return g
	}
	g := &getCtx{r: r}
	g.doneFn = g.done
	return g
}

// Get reads from the primary, failing over to the next replica when a
// node does not answer.
func (r *Router) Get(key []byte, cb func(val []byte, err error)) {
	r.Routed++
	span := r.rec.NewRequest()
	g := r.getGet()
	g.capsule = r.caps.Get(len(key))
	copy(g.capsule.Bytes(), key)
	g.primary = shardOf(key, len(r.c.Nodes))
	g.bytes = len(key) + 64
	g.span = span
	g.start = r.c.Eng.Now()
	g.cb = cb
	g.try()
}

func (g *getCtx) try() {
	r := g.r
	if g.attempt >= r.c.Replicas {
		g.resolve(nil, ErrNoReplicas)
		return
	}
	addr := r.c.Nodes[(g.primary+g.attempt)%len(r.c.Nodes)].DPU.ControlAddr()
	r.cli.CallSpan(addr, MethodGet, g.capsule, g.bytes, g.span, g.doneFn)
}

func (g *getCtx) done(val any, err error) {
	if errors.Is(err, rpc.ErrTimeout) {
		g.r.Failovers++
		g.attempt++
		g.try()
		return
	}
	if err != nil {
		g.resolve(nil, err)
		return
	}
	g.resolve(val.([]byte), nil)
}

func (g *getCtx) resolve(val []byte, err error) {
	r := g.r
	if r.rec != nil {
		r.rec.Span("cluster", "get", g.span, g.start, r.c.Eng.Now())
	}
	g.capsule.Release()
	cb := g.cb
	*g = getCtx{r: r, doneFn: g.doneFn}
	r.getFree = append(r.getFree, g)
	cb(val, err)
}
