//go:build ignore

// Packet-filter program in restricted Go, compiled by
// internal/ebpf/gofront at deploy time. It is the frontend twin of
// the hand-written Program in fail2ban.go — the differential tests
// hold the two to the same instruction shape, so edits here must stay
// in lockstep with the assembly.
//
// The threshold constant is overridden per deployment through
// gofront.Options.Consts, the compiler's -D equivalent.
package prog

//hyperion:map bans id=0 key=4 value=8 entries=65536
//hyperion:map fails id=1 key=4 value=8 entries=65536

// Packet mirrors trace.Packet.Marshal's 20-byte wire layout.
type Packet struct {
	SrcIP    uint32
	DstIP    uint32
	SrcPort  uint16
	DstPort  uint16
	Proto    uint8
	Flags    uint8
	Bytes    uint32
	AuthFail uint8
	_        uint8
}

// Map ids (the //hyperion:map declarations above) and verdicts
// (must match fail2ban.Verdict*).
const (
	bansMap  = 0
	failsMap = 1

	threshold = 5 // overridden at deploy time

	VerdictPass   = 0
	VerdictDrop   = 1
	VerdictBanned = 2
)

// mapLookup returns a pointer to the value stored under *k, or nil.
//
//hyperion:helper 1
func mapLookup(m uint32, k *uint32) *uint64

// mapUpdate inserts or overwrites the value stored under *k.
//
//hyperion:helper 2
func mapUpdate(m uint32, k *uint32, v *uint64) int64

// Filter drops packets from banned sources, counts authentication
// failures per source, and bans sources that reach the threshold.
func Filter(ctx *Packet) uint64 {
	var key uint32
	var one uint64
	src := ctx.SrcIP
	fail := ctx.AuthFail
	key = src
	p := mapLookup(bansMap, &key)
	if p != nil {
		return VerdictDrop
	}
	if fail == 0 {
		goto pass
	}
	q := mapLookup(failsMap, &key)
	if q == nil {
		goto first
	}
	n := *q
	n += 1
	*q = n
	if n >= threshold {
		goto ban
	}
	goto pass
first:
	one = 1
	mapUpdate(failsMap, &key, &one)
	goto pass
ban:
	one = 1
	mapUpdate(bansMap, &key, &one)
	return VerdictBanned
pass:
	return VerdictPass
}
