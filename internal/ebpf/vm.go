package ebpf

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
)

func byteSwap32(v uint32) uint32 { return bits.ReverseBytes32(v) }
func byteSwap64(v uint64) uint64 { return bits.ReverseBytes64(v) }

// Address-space layout for VM pointers. eBPF registers hold uint64s; the
// VM maps fixed ranges onto Go byte slices so programs can dereference
// stack, context, and helper-returned windows without ever seeing real
// addresses.
const (
	StackSize = 512
	stackBase = 0x1000_0000
	ctxBase   = 0x2000_0000
	winBase   = 0x4000_0000
	winStride = 0x0010_0000 // max 1 MiB per window
)

// Built-in helper ids (kernel-flavoured numbering).
const (
	HelperMapLookup int32 = 1
	HelperMapUpdate int32 = 2
	HelperMapDelete int32 = 3
	HelperKtime     int32 = 5
	HelperTrace     int32 = 6
	// HelperUserBase is the first id available to embedders (storage
	// walks, packet emit, segment reads...).
	HelperUserBase int32 = 64
)

// HelperFunc implements one helper call. args are r1..r5; the returned
// value lands in r0.
type HelperFunc func(vm *VM, args [5]uint64) (uint64, error)

// Helper couples a helper implementation with its name (for the verifier
// and diagnostics).
type Helper struct {
	Name string
	Fn   HelperFunc
}

// Runtime errors.
var (
	ErrNoProgram      = errors.New("ebpf: no program loaded")
	ErrStepLimit      = errors.New("ebpf: runtime instruction limit exceeded")
	ErrBadMemAccess   = errors.New("ebpf: invalid memory access")
	ErrUnknownHelper  = errors.New("ebpf: call to unknown helper")
	ErrBadInstruction = errors.New("ebpf: unsupported instruction")
	ErrFellOffEnd     = errors.New("ebpf: execution fell off program end")
)

// StepLimit bounds one execution (the verifier rejects loops, but helper
// chains and long straight-line programs still need a backstop).
const StepLimit = 4 << 20

type window struct {
	base     uint64
	data     []byte
	writable bool
}

// VM executes eBPF programs. It is not safe for concurrent use; create
// one VM per execution context (each fabric slot gets its own).
type VM struct {
	prog    []Instruction
	targets []int // jump target instruction index, -1 for non-jumps
	Maps    *MapSet
	helpers map[int32]Helper
	// Now supplies the ktime helper; defaults to a counter when nil.
	Now func() uint64
	// Trace receives HelperTrace output.
	Trace func(v uint64)

	stack   [StackSize]byte
	ctx     []byte
	windows []window
	fakeNow uint64

	// Compiled-backend state. regs is the preallocated register file the
	// compiled artifact runs on; compiled/noCompile cache the lowering
	// result until the next Load or RegisterHelper; builtin marks helper
	// ids still bound to their NewVM defaults (eligible for devirtualized
	// fast paths); stackClean is true while the stack is known all-zero,
	// letting compiled runs skip the entry memclr.
	regs       regFile
	compiled   *compiledProg
	noCompile  bool
	builtin    map[int32]bool
	stackClean bool

	Steps       int64 // instructions executed in the last Run
	TotalSteps  int64 // cumulative
	HelperCalls int64
}

// NewVM creates a VM with the standard helpers registered.
func NewVM(maps *MapSet) *VM {
	if maps == nil {
		maps = &MapSet{}
	}
	vm := &VM{Maps: maps, helpers: make(map[int32]Helper), builtin: make(map[int32]bool)}
	vm.registerBuiltins()
	return vm
}

// RegisterHelper installs a helper by id, replacing any existing one.
// Rebinding drops the id's builtin fast path and invalidates any
// compiled artifact (which devirtualizes helpers at compile time).
func (vm *VM) RegisterHelper(id int32, h Helper) {
	vm.helpers[id] = h
	delete(vm.builtin, id)
	vm.invalidate()
}

// registerBuiltin installs a default helper and marks it eligible for
// the compiler's devirtualized fast paths.
func (vm *VM) registerBuiltin(id int32, h Helper) {
	vm.RegisterHelper(id, h)
	vm.builtin[id] = true
}

// invalidate discards the compiled artifact; the next Run re-lowers.
func (vm *VM) invalidate() {
	vm.compiled = nil
	vm.noCompile = false
}

// Helpers returns the registered helper ids (for the verifier).
func (vm *VM) Helpers() map[int32]bool {
	out := make(map[int32]bool, len(vm.helpers))
	for id := range vm.helpers {
		out[id] = true
	}
	return out
}

// Load installs a program after computing its jump table.
func (vm *VM) Load(prog []Instruction) error {
	targets, err := jumpTargets(prog)
	if err != nil {
		return err
	}
	vm.prog = prog
	vm.targets = targets
	vm.invalidate()
	return nil
}

// Precompile lowers the loaded program to the closure-compiled backend
// now (Run otherwise compiles lazily on first use). It reports whether
// the compiled path is active; false means the program is outside the
// compiler's domain and Run will use the interpreter.
func (vm *VM) Precompile() bool {
	if vm.prog == nil {
		return false
	}
	if vm.compiled == nil && !vm.noCompile {
		if cp := compile(vm); cp != nil {
			vm.compiled = cp
		} else {
			vm.noCompile = true
		}
	}
	return vm.compiled != nil
}

// jumpTargets maps slot-relative jump offsets to instruction indexes,
// accounting for two-slot LDDW instructions.
func jumpTargets(prog []Instruction) ([]int, error) {
	slotOf := make([]int, len(prog)+1)
	for i, ins := range prog {
		slotOf[i+1] = slotOf[i] + 1
		if ins.IsLDDW() {
			slotOf[i+1]++
		}
	}
	slotToIdx := make(map[int]int, len(prog))
	for i := range prog {
		slotToIdx[slotOf[i]] = i
	}
	targets := make([]int, len(prog))
	for i, ins := range prog {
		// Decoded register nibbles span 0..15 but only NumRegs exist;
		// rejecting here covers both Verify and a bare Load.
		if ins.Dst >= NumRegs || ins.Src >= NumRegs {
			return nil, fmt.Errorf("ebpf: insn %d: register out of range (dst r%d, src r%d)", i, ins.Dst, ins.Src)
		}
		targets[i] = -1
		cls := ins.Class()
		if cls != ClassJMP && cls != ClassJMP32 {
			continue
		}
		op := ins.Op & 0xf0
		if op == JmpExit || op == JmpCall {
			continue
		}
		dstSlot := slotOf[i] + 1 + int(ins.Off)
		idx, ok := slotToIdx[dstSlot]
		if !ok {
			return nil, fmt.Errorf("ebpf: insn %d: jump to invalid slot %d", i, dstSlot)
		}
		targets[i] = idx
	}
	return targets, nil
}

// AddWindow exposes data to the program at a fresh virtual address,
// returning that address. Windows persist until ResetWindows.
func (vm *VM) AddWindow(data []byte, writable bool) uint64 {
	if len(data) > winStride {
		panic("ebpf: window too large")
	}
	base := uint64(winBase + len(vm.windows)*winStride)
	vm.windows = append(vm.windows, window{base: base, data: data, writable: writable})
	return base
}

// ResetWindows drops all registered windows.
func (vm *VM) ResetWindows() { vm.windows = vm.windows[:0] }

// resolve returns the backing slice for [addr, addr+size) and whether
// writes are permitted.
func (vm *VM) resolve(addr uint64, size int) ([]byte, bool, error) {
	end := addr + uint64(size)
	if end < addr { // address-space wrap
		return nil, false, fmt.Errorf("%w: [%#x,%#x)", ErrBadMemAccess, addr, end)
	}
	switch {
	case addr >= stackBase && end <= stackBase+StackSize:
		return vm.stack[addr-stackBase : end-stackBase], true, nil
	case addr >= ctxBase && end <= ctxBase+uint64(len(vm.ctx)):
		return vm.ctx[addr-ctxBase : end-ctxBase], true, nil
	}
	for i := range vm.windows {
		w := &vm.windows[i]
		if addr >= w.base && end <= w.base+uint64(len(w.data)) {
			return w.data[addr-w.base : end-w.base], w.writable, nil
		}
	}
	return nil, false, fmt.Errorf("%w: [%#x,%#x)", ErrBadMemAccess, addr, end)
}

func (vm *VM) memLoad(addr uint64, size int) (uint64, error) {
	b, _, err := vm.resolve(addr, size)
	if err != nil {
		return 0, err
	}
	switch size {
	case 1:
		return uint64(b[0]), nil
	case 2:
		return uint64(binary.LittleEndian.Uint16(b)), nil
	case 4:
		return uint64(binary.LittleEndian.Uint32(b)), nil
	default:
		return binary.LittleEndian.Uint64(b), nil
	}
}

func (vm *VM) memStore(addr uint64, size int, val uint64) error {
	b, writable, err := vm.resolve(addr, size)
	if err != nil {
		return err
	}
	if !writable {
		return fmt.Errorf("%w: write to read-only window at %#x", ErrBadMemAccess, addr)
	}
	if addr >= stackBase && addr < stackBase+StackSize {
		vm.stackClean = false
	}
	switch size {
	case 1:
		b[0] = byte(val)
	case 2:
		binary.LittleEndian.PutUint16(b, uint16(val))
	case 4:
		binary.LittleEndian.PutUint32(b, uint32(val))
	default:
		binary.LittleEndian.PutUint64(b, val)
	}
	return nil
}

// ReadBytes copies size bytes from program-visible memory (for helpers
// taking pointer arguments).
func (vm *VM) ReadBytes(addr uint64, size int) ([]byte, error) {
	b, _, err := vm.resolve(addr, size)
	if err != nil {
		return nil, err
	}
	out := make([]byte, size)
	copy(out, b)
	return out, nil
}

// WriteBytes copies data into program-visible memory.
func (vm *VM) WriteBytes(addr uint64, data []byte) error {
	b, writable, err := vm.resolve(addr, len(data))
	if err != nil {
		return err
	}
	if !writable {
		return fmt.Errorf("%w: write to read-only window at %#x", ErrBadMemAccess, addr)
	}
	if addr >= stackBase && addr < stackBase+StackSize {
		vm.stackClean = false
	}
	copy(b, data)
	return nil
}

// Run executes the loaded program with ctx mapped at the context base
// (r1 points to it, r2 holds its length), returning r0. It dispatches
// to the closure-compiled backend when the program is in the compiler's
// domain (verified, loop-free programs always are) and otherwise falls
// back to the reference interpreter; the two are bit-identical in
// results, step/helper accounting, and error behaviour.
func (vm *VM) Run(ctx []byte) (uint64, error) {
	if vm.prog == nil {
		return 0, ErrNoProgram
	}
	if vm.compiled == nil && !vm.noCompile {
		vm.Precompile()
	}
	if vm.compiled != nil {
		return vm.runCompiled(ctx)
	}
	return vm.RunInterpreted(ctx)
}

// RunInterpreted executes the loaded program on the per-instruction
// switch interpreter — the reference implementation the compiled
// backend is differentially tested against.
func (vm *VM) RunInterpreted(ctx []byte) (uint64, error) {
	if vm.prog == nil {
		return 0, ErrNoProgram
	}
	vm.ctx = ctx
	var r [NumRegs]uint64
	r[R1] = ctxBase
	r[R2] = uint64(len(ctx))
	r[R10] = stackBase + StackSize
	for i := range vm.stack {
		vm.stack[i] = 0
	}
	vm.stackClean = true
	vm.Steps = 0

	pc := 0
	for {
		if pc < 0 || pc >= len(vm.prog) {
			return 0, ErrFellOffEnd
		}
		if vm.Steps >= StepLimit {
			return 0, ErrStepLimit
		}
		vm.Steps++
		vm.TotalSteps++
		ins := vm.prog[pc]

		switch ins.Class() {
		case ClassALU64, ClassALU:
			if ins.IsEndian() {
				v := r[ins.Dst]
				switch ins.Imm {
				case 16:
					v &= 0xffff
					if ins.Op&SrcReg != 0 { // to big-endian
						v = uint64(v>>8 | (v&0xff)<<8)
					}
				case 32:
					v &= 0xffffffff
					if ins.Op&SrcReg != 0 {
						v = uint64(byteSwap32(uint32(v)))
					}
				case 64:
					if ins.Op&SrcReg != 0 {
						v = byteSwap64(v)
					}
				default:
					return 0, fmt.Errorf("%w: endian width %d", ErrBadInstruction, ins.Imm)
				}
				r[ins.Dst] = v
				pc++
				continue
			}
			is32 := ins.Class() == ClassALU
			var src uint64
			if ins.Op&SrcReg != 0 {
				src = r[ins.Src]
			} else {
				src = uint64(int64(ins.Imm))
			}
			dst := r[ins.Dst]
			if is32 {
				dst = uint64(uint32(dst))
				src = uint64(uint32(src))
			}
			var res uint64
			switch ins.Op & 0xf0 {
			case ALUAdd:
				res = dst + src
			case ALUSub:
				res = dst - src
			case ALUMul:
				res = dst * src
			case ALUDiv:
				if src == 0 {
					res = 0 // ISA-defined: division by zero yields 0
				} else {
					res = dst / src
				}
			case ALUMod:
				if src == 0 {
					res = dst // ISA-defined: modulo by zero keeps dst
				} else {
					res = dst % src
				}
			case ALUOr:
				res = dst | src
			case ALUAnd:
				res = dst & src
			case ALUXor:
				res = dst ^ src
			case ALULsh:
				if is32 {
					res = dst << (src & 31)
				} else {
					res = dst << (src & 63)
				}
			case ALURsh:
				if is32 {
					res = dst >> (src & 31)
				} else {
					res = dst >> (src & 63)
				}
			case ALUArsh:
				if is32 {
					res = uint64(uint32(int32(uint32(dst)) >> (src & 31)))
				} else {
					res = uint64(int64(dst) >> (src & 63))
				}
			case ALUNeg:
				res = -dst
			case ALUMov:
				res = src
			default:
				return 0, fmt.Errorf("%w: alu op %#x", ErrBadInstruction, ins.Op)
			}
			if is32 {
				res = uint64(uint32(res))
			}
			r[ins.Dst] = res
			pc++

		case ClassJMP, ClassJMP32:
			op := ins.Op & 0xf0
			if op == JmpExit {
				return r[R0], nil
			}
			if op == JmpCall {
				h, ok := vm.helpers[ins.Imm]
				if !ok {
					return 0, fmt.Errorf("%w: id %d", ErrUnknownHelper, ins.Imm)
				}
				vm.HelperCalls++
				ret, err := h.Fn(vm, [5]uint64{r[R1], r[R2], r[R3], r[R4], r[R5]})
				if err != nil {
					return 0, fmt.Errorf("ebpf: helper %s: %w", h.Name, err)
				}
				r[R0] = ret
				// r1-r5 are clobbered by calls.
				r[R1], r[R2], r[R3], r[R4], r[R5] = 0, 0, 0, 0, 0
				pc++
				continue
			}
			var src uint64
			if ins.Op&SrcReg != 0 {
				src = r[ins.Src]
			} else {
				src = uint64(int64(ins.Imm))
			}
			dst := r[ins.Dst]
			if ins.Class() == ClassJMP32 {
				dst = uint64(uint32(dst))
				src = uint64(uint32(src))
			}
			var taken bool
			switch op {
			case JmpA:
				taken = true
			case JmpEq:
				taken = dst == src
			case JmpNe:
				taken = dst != src
			case JmpGt:
				taken = dst > src
			case JmpGe:
				taken = dst >= src
			case JmpLt:
				taken = dst < src
			case JmpLe:
				taken = dst <= src
			case JmpSet:
				taken = dst&src != 0
			case JmpSGt:
				taken = int64(dst) > int64(src)
			case JmpSGe:
				taken = int64(dst) >= int64(src)
			case JmpSLt:
				taken = int64(dst) < int64(src)
			case JmpSLe:
				taken = int64(dst) <= int64(src)
			default:
				return 0, fmt.Errorf("%w: jmp op %#x", ErrBadInstruction, ins.Op)
			}
			if taken {
				pc = vm.targets[pc]
			} else {
				pc++
			}

		case ClassLD:
			if !ins.IsLDDW() {
				return 0, fmt.Errorf("%w: ld op %#x", ErrBadInstruction, ins.Op)
			}
			r[ins.Dst] = uint64(ins.Imm64)
			pc++

		case ClassLDX:
			v, err := vm.memLoad(r[ins.Src]+uint64(int64(ins.Off)), ins.SizeBytes())
			if err != nil {
				return 0, err
			}
			r[ins.Dst] = v
			pc++

		case ClassSTX:
			if ins.IsAtomic() {
				size := ins.SizeBytes()
				if size != 4 && size != 8 {
					return 0, fmt.Errorf("%w: atomic width %d", ErrBadInstruction, size)
				}
				addr := r[ins.Dst] + uint64(int64(ins.Off))
				old, err := vm.memLoad(addr, size)
				if err != nil {
					return 0, err
				}
				src := r[ins.Src]
				if size == 4 {
					src = uint64(uint32(src))
				}
				var newVal uint64
				writeBack := true
				switch ins.Imm {
				case AtomicAdd, AtomicAdd | AtomicFetch:
					newVal = old + src
				case AtomicOr, AtomicOr | AtomicFetch:
					newVal = old | src
				case AtomicAnd, AtomicAnd | AtomicFetch:
					newVal = old & src
				case AtomicXor, AtomicXor | AtomicFetch:
					newVal = old ^ src
				case AtomicXchg:
					newVal = src
				case AtomicCmpXchg:
					cmp := r[R0]
					if size == 4 {
						cmp = uint64(uint32(cmp))
					}
					if old == cmp {
						newVal = src
					} else {
						writeBack = false
					}
					r[R0] = old
				default:
					return 0, fmt.Errorf("%w: atomic op %#x", ErrBadInstruction, ins.Imm)
				}
				if writeBack {
					if err := vm.memStore(addr, size, newVal); err != nil {
						return 0, err
					}
				}
				if ins.Imm&AtomicFetch != 0 && ins.Imm != AtomicCmpXchg {
					r[ins.Src] = old
				}
				pc++
				continue
			}
			if err := vm.memStore(r[ins.Dst]+uint64(int64(ins.Off)), ins.SizeBytes(), r[ins.Src]); err != nil {
				return 0, err
			}
			pc++

		case ClassST:
			if err := vm.memStore(r[ins.Dst]+uint64(int64(ins.Off)), ins.SizeBytes(), uint64(int64(ins.Imm))); err != nil {
				return 0, err
			}
			pc++

		default:
			return 0, fmt.Errorf("%w: class %#x", ErrBadInstruction, ins.Op)
		}
	}
}

func (vm *VM) registerBuiltins() {
	vm.registerBuiltin(HelperMapLookup, Helper{Name: "map_lookup_elem", Fn: func(vm *VM, a [5]uint64) (uint64, error) {
		m, err := vm.Maps.Get(int(a[0]))
		if err != nil {
			return 0, err
		}
		key, err := vm.ReadBytes(a[1], m.KeySize())
		if err != nil {
			return 0, err
		}
		val, ok := m.Lookup(key)
		if !ok {
			return 0, nil
		}
		return vm.AddWindow(val, true), nil
	}})
	vm.registerBuiltin(HelperMapUpdate, Helper{Name: "map_update_elem", Fn: func(vm *VM, a [5]uint64) (uint64, error) {
		m, err := vm.Maps.Get(int(a[0]))
		if err != nil {
			return 0, err
		}
		key, err := vm.ReadBytes(a[1], m.KeySize())
		if err != nil {
			return 0, err
		}
		val, err := vm.ReadBytes(a[2], m.ValueSize())
		if err != nil {
			return 0, err
		}
		if err := m.Update(key, val); err != nil {
			return ^uint64(0), nil // -1: full or invalid
		}
		return 0, nil
	}})
	vm.registerBuiltin(HelperMapDelete, Helper{Name: "map_delete_elem", Fn: func(vm *VM, a [5]uint64) (uint64, error) {
		m, err := vm.Maps.Get(int(a[0]))
		if err != nil {
			return 0, err
		}
		key, err := vm.ReadBytes(a[1], m.KeySize())
		if err != nil {
			return 0, err
		}
		if m.Delete(key) {
			return 0, nil
		}
		return ^uint64(0), nil
	}})
	vm.registerBuiltin(HelperKtime, Helper{Name: "ktime_get_ns", Fn: func(vm *VM, a [5]uint64) (uint64, error) {
		if vm.Now != nil {
			return vm.Now(), nil
		}
		vm.fakeNow++
		return vm.fakeNow, nil
	}})
	vm.registerBuiltin(HelperTrace, Helper{Name: "trace", Fn: func(vm *VM, a [5]uint64) (uint64, error) {
		if vm.Trace != nil {
			vm.Trace(a[0])
		}
		return 0, nil
	}})
}
