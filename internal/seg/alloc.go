package seg

import (
	"sort"
)

// allocator is a first-fit free-list allocator over a linear space of
// units (bytes for DRAM, blocks for NVMe). base offsets every returned
// address (used to reserve the table checkpoint area).
type allocator struct {
	base  int64
	total int64
	holes []hole // sorted by addr, coalesced
}

type hole struct{ addr, size int64 }

func newAllocator(total int64) *allocator {
	if total < 0 {
		total = 0
	}
	return &allocator{total: total, holes: []hole{{0, total}}}
}

// free returns the total unallocated units.
func (a *allocator) free() int64 {
	var f int64
	for _, h := range a.holes {
		f += h.size
	}
	return f
}

// alloc reserves n units, returning their starting address.
func (a *allocator) alloc(n int64) (int64, error) {
	if n <= 0 {
		return 0, ErrNoSpace
	}
	for i := range a.holes {
		if a.holes[i].size >= n {
			addr := a.holes[i].addr
			a.holes[i].addr += n
			a.holes[i].size -= n
			if a.holes[i].size == 0 {
				a.holes = append(a.holes[:i], a.holes[i+1:]...)
			}
			return addr + a.base, nil
		}
	}
	return 0, ErrNoSpace
}

// release returns n units at addr to the free list, coalescing
// neighbours.
func (a *allocator) release(addr, n int64) {
	if n <= 0 {
		return
	}
	addr -= a.base
	i := sort.Search(len(a.holes), func(i int) bool { return a.holes[i].addr >= addr })
	a.holes = append(a.holes, hole{})
	copy(a.holes[i+1:], a.holes[i:])
	a.holes[i] = hole{addr, n}
	// Coalesce with next, then previous.
	if i+1 < len(a.holes) && a.holes[i].addr+a.holes[i].size == a.holes[i+1].addr {
		a.holes[i].size += a.holes[i+1].size
		a.holes = append(a.holes[:i+1], a.holes[i+2:]...)
	}
	if i > 0 && a.holes[i-1].addr+a.holes[i-1].size == a.holes[i].addr {
		a.holes[i-1].size += a.holes[i].size
		a.holes = append(a.holes[:i], a.holes[i+1:]...)
	}
}

// lruCache models the hardware segment-descriptor cache. It caches the
// descriptor pointer, so a translation hit is one map access (the owner
// keeps it coherent by removing freed objects). The recency order is an
// index-linked list over a node arena, so get, put, and remove are O(1)
// with no steady-state allocation; eviction order is identical to the
// textbook list form (front = LRU, back = MRU).
type lruCache struct {
	cap        int
	idx        map[ObjectID]int32
	nodes      []lruNode
	head, tail int32 // head = LRU, tail = MRU; -1 when empty
	freeList   int32 // recycled node indexes, chained via next
}

type lruNode struct {
	key        ObjectID
	val        *Segment
	prev, next int32
}

func newLRU(cap int) *lruCache {
	return &lruCache{
		cap:      cap,
		idx:      make(map[ObjectID]int32, cap),
		head:     -1,
		tail:     -1,
		freeList: -1,
	}
}

func (c *lruCache) get(id ObjectID) (*Segment, bool) {
	i, ok := c.idx[id]
	if !ok {
		return nil, false
	}
	c.moveBack(i)
	return c.nodes[i].val, true
}

func (c *lruCache) put(id ObjectID, sg *Segment) {
	if i, ok := c.idx[id]; ok {
		c.nodes[i].val = sg
		c.moveBack(i)
		return
	}
	if len(c.idx) >= c.cap {
		v := c.head
		c.unlink(v)
		delete(c.idx, c.nodes[v].key)
		c.nodes[v].val = nil
		c.nodes[v].next = c.freeList
		c.freeList = v
	}
	var i int32
	if c.freeList >= 0 {
		i = c.freeList
		c.freeList = c.nodes[i].next
		c.nodes[i] = lruNode{key: id, val: sg}
	} else {
		c.nodes = append(c.nodes, lruNode{key: id, val: sg})
		i = int32(len(c.nodes) - 1)
	}
	c.pushBack(i)
	c.idx[id] = i
}

func (c *lruCache) remove(id ObjectID) {
	i, ok := c.idx[id]
	if !ok {
		return
	}
	c.unlink(i)
	delete(c.idx, id)
	c.nodes[i].val = nil
	c.nodes[i].next = c.freeList
	c.freeList = i
}

func (c *lruCache) unlink(i int32) {
	n := &c.nodes[i]
	if n.prev >= 0 {
		c.nodes[n.prev].next = n.next
	} else {
		c.head = n.next
	}
	if n.next >= 0 {
		c.nodes[n.next].prev = n.prev
	} else {
		c.tail = n.prev
	}
}

func (c *lruCache) pushBack(i int32) {
	n := &c.nodes[i]
	n.prev, n.next = c.tail, -1
	if c.tail >= 0 {
		c.nodes[c.tail].next = i
	} else {
		c.head = i
	}
	c.tail = i
}

func (c *lruCache) moveBack(i int32) {
	if c.tail == i {
		return
	}
	c.unlink(i)
	c.pushBack(i)
}
