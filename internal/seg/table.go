package seg

import (
	"fmt"
	"hash/crc32"
	"hyperion/internal/wire"

	"hyperion/internal/nvme"
)

// Segment-table checkpointing. The table serializes into the reserved
// control area at LBA 0 of device 0 with a checksummed header, so the
// store survives power loss: durable segments are recovered exactly;
// DRAM segments are dropped (their contents were ephemeral by contract).

const tableMagic = 0x48595054 // "HYPT"

// entryBytes is the on-disk size of one table entry:
// id(16) size(8) addr(8) flags(1) pad(7).
const entryBytes = 40

// Checkpoint persists the current table to the control area. cb (may be
// nil) fires when the write is durable.
func (s *Store) Checkpoint(cb func(error)) {
	s.dirty = 0
	durable := make([]*Segment, 0, len(s.table))
	for _, sg := range s.table {
		if sg.Loc == LocNVMe {
			durable = append(durable, sg)
		}
	}
	// Deterministic order for reproducible images.
	sortSegments(durable)

	need := 16 + len(durable)*entryBytes
	bs := s.cfg.BlockSize
	maxBytes := int(s.cfg.TableBlocks) * bs
	if need > maxBytes {
		s.failW(cb, 0, fmt.Errorf("%w: table needs %d bytes, control area holds %d", ErrNoSpace, need, maxBytes))
		return
	}
	buf := make([]byte, (need+bs-1)/bs*bs)
	wire.PutLE32At(buf, 0, tableMagic)
	wire.PutLE32At(buf, 4, uint32(len(durable)))
	off := 16
	for _, sg := range durable {
		sg.ID.EncodeTo(buf[off:])
		wire.PutLE64At(buf, off+16, uint64(sg.Size))
		wire.PutLE64At(buf, off+24, uint64(sg.Addr))
		var flags byte
		if sg.Durable {
			flags |= 1
		}
		buf[off+32] = flags
		off += entryBytes
	}
	crc := crc32.ChecksumIEEE(buf[16:])
	wire.PutLE32At(buf, 8, crc)
	s.Counters.Get("checkpoints").Add(1)
	s.devWrite(0, 0, buf, func(err error) {
		if err != nil {
			if cb != nil {
				cb(err)
			}
			return
		}
		ferr := s.devs[0].Flush(0, func(st uint16) {
			if cb == nil {
				return
			}
			if st != nvme.StatusOK {
				cb(fmt.Errorf("seg: checkpoint flush status %#x", st))
				return
			}
			cb(nil)
		})
		if ferr != nil && cb != nil {
			cb(ferr)
		}
	})
}

func sortSegments(ss []*Segment) {
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && ss[j].ID.Less(ss[j-1].ID); j-- {
			ss[j], ss[j-1] = ss[j-1], ss[j]
		}
	}
}

// Recover rebuilds a store's table from the control area of device 0.
// It must be called on a freshly-constructed store. NVMe allocators are
// replayed so subsequent allocations do not collide with recovered
// segments.
func (s *Store) Recover(cb func(n int, err error)) {
	bs := s.cfg.BlockSize
	s.devRead(0, 0, int(s.cfg.TableBlocks), func(buf []byte, st uint16) {
		if st != nvme.StatusOK {
			cb(0, fmt.Errorf("seg: recover read status %#x", st))
			return
		}
		if wire.LE32At(buf, 0) != tableMagic {
			cb(0, fmt.Errorf("%w: bad magic", ErrBadTable))
			return
		}
		n := int(wire.LE32At(buf, 4))
		want := wire.LE32At(buf, 8)
		need := 16 + n*entryBytes
		if need > len(buf) {
			cb(0, fmt.Errorf("%w: truncated table", ErrBadTable))
			return
		}
		// Checksum covers the full padded region as written.
		padded := (need + bs - 1) / bs * bs
		if crc32.ChecksumIEEE(buf[16:padded]) != want {
			cb(0, fmt.Errorf("%w: checksum mismatch", ErrBadTable))
			return
		}
		off := 16
		for i := 0; i < n; i++ {
			sg := &Segment{
				ID:      DecodeID(buf[off:]),
				Size:    int64(wire.LE64At(buf, off+16)),
				Addr:    int64(wire.LE64At(buf, off+24)),
				Loc:     LocNVMe,
				Durable: buf[off+32]&1 != 0,
			}
			s.table[sg.ID] = sg
			dev, lba := s.split(sg.Addr)
			blocks := (sg.Size + int64(bs) - 1) / int64(bs)
			s.nvmeAl[dev].claim(lba, blocks)
			off += entryBytes
		}
		cb(n, nil)
	})
}

// claim removes [addr, addr+n) from the free list during recovery.
func (a *allocator) claim(addr, n int64) {
	addr -= a.base
	for i := range a.holes {
		h := a.holes[i]
		if addr >= h.addr && addr+n <= h.addr+h.size {
			// Split the hole around the claimed range.
			var repl []hole
			if addr > h.addr {
				repl = append(repl, hole{h.addr, addr - h.addr})
			}
			if addr+n < h.addr+h.size {
				repl = append(repl, hole{addr + n, h.addr + h.size - addr - n})
			}
			a.holes = append(a.holes[:i], append(repl, a.holes[i+1:]...)...)
			return
		}
	}
}
