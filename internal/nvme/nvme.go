// Package nvme models an off-the-shelf NVMe SSD as attached to the
// Hyperion crossover board: submission/completion queue pairs addressed
// through BAR doorbells, a multi-channel flash backend with realistic
// read/program latencies, and a real (sparse, in-memory) block store so
// that the storage stack above it round-trips actual bytes.
package nvme

import (
	"errors"
	"fmt"

	"hyperion/internal/fault"
	"hyperion/internal/sim"
	"hyperion/internal/telemetry"
)

// Opcodes (a small, structurally faithful subset of NVMe I/O commands).
const (
	OpFlush uint8 = 0x00
	OpWrite uint8 = 0x01
	OpRead  uint8 = 0x02
)

// Status codes.
const (
	StatusOK        uint16 = 0x0
	StatusInvalidNS uint16 = 0x0B
	StatusLBARange  uint16 = 0x80
	StatusInvalidOp uint16 = 0x01
	// StatusInternal is the injected-fault status (media error class).
	StatusInternal uint16 = 0x06
	// StatusTimeout is synthesized by the Host when a command misses its
	// deadline; the device never posts it. (0xFFFF is already claimed by
	// seg's enqueue-failure sentinel, so the host uses 0xFFFD.)
	StatusTimeout uint16 = 0xFFFD
)

// Doorbell register layout within the BAR: doorbell for queue q is at
// offset DoorbellStride*q.
const DoorbellStride = 8

// Errors returned by host-side operations.
var (
	ErrQueueFull  = errors.New("nvme: submission queue full")
	ErrBadQueue   = errors.New("nvme: no such queue")
	ErrShortWrite = errors.New("nvme: write data length does not match block count")
)

// Config shapes the device. The defaults approximate a 2023 datacenter
// TLC NVMe drive.
type Config struct {
	Name           string
	BlockSize      int          // bytes per LBA, typically 4096
	Blocks         int64        // capacity in blocks
	Channels       int          // independent flash channels
	ReadLatency    sim.Duration // flash page read (tR)
	ProgramLatency sim.Duration // flash page program (tProg), behind write cache
	CtrlOverhead   sim.Duration // controller firmware per-command overhead
	MaxQueuePairs  int
	QueueDepth     int
}

// DefaultConfig returns a 1 TB-class drive: 4K blocks, 8 channels,
// 70 µs reads, 15 µs cached writes, 3 µs controller overhead.
func DefaultConfig(name string) Config {
	return Config{
		Name:           name,
		BlockSize:      4096,
		Blocks:         256 << 20, // 1 TiB of 4K blocks
		Channels:       8,
		ReadLatency:    70 * sim.Microsecond,
		ProgramLatency: 15 * sim.Microsecond,
		CtrlOverhead:   3 * sim.Microsecond,
		MaxQueuePairs:  16,
		QueueDepth:     1024,
	}
}

// Command is a submission-queue entry. Span carries the
// request-scoped trace context alongside the command, like a vendor
// tag in the reserved SQE dwords.
type Command struct {
	Opcode uint8
	CID    uint16
	NSID   uint32
	LBA    int64
	Blocks int
	Data   []byte // write payload; nil for reads
	Span   telemetry.RequestID
}

// opName labels a command's opcode for telemetry with a static
// string, so armed span recording never allocates.
func opName(op uint8) string {
	switch op {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpFlush:
		return "flush"
	}
	return "op"
}

// Completion is a completion-queue entry delivered to the host.
type Completion struct {
	CID    uint16
	Status uint16
	Data   []byte // read payload; nil otherwise
}

// Device is the SSD model. It implements pcie.Device. All methods must
// be called from the simulation loop.
type Device struct {
	cfg Config
	eng *sim.Engine

	// dma is injected by Bind: it models moving size bytes across the
	// device's PCIe link and fires done when the transfer completes.
	dma func(size int64, done func())
	// interrupt is the MSI-X-like completion notification to the host
	// driver, carrying the queue id and the completion entry.
	interrupt func(qid int, c Completion)

	queues   []*queuePair
	channels []sim.Time       // per-flash-channel busy horizon
	store    map[int64][]byte // sparse LBA → block payload

	// Fault injection: each read/write command fails with StatusInternal
	// with this probability, drawn from failRand (set both via
	// InjectFaults). The functional Sync path is unaffected.
	failProb float64
	failRand *sim.Rand

	// plan is the richer fault plane (media errors, swallowed commands,
	// transient read corruption); see SetFaultPlan.
	plan *fault.Plan
	rec  *telemetry.Recorder

	evName  string // precomputed event name for all device-side events
	ctxFree []*cmdCtx

	Counters sim.CounterSet
}

// SetRecorder arms the telemetry plane: one span per completed
// command, from execute start to completion post, named by opcode.
// Disarmed (nil) the hooks are pure nil checks.
func (d *Device) SetRecorder(rec *telemetry.Recorder) { d.rec = rec }

// InjectFaults makes a fraction of subsequent I/O commands fail with
// StatusInternal, deterministically per seed. prob 0 disables.
func (d *Device) InjectFaults(prob float64, seed uint64) {
	d.failProb = prob
	d.failRand = sim.NewRand(seed)
}

// SetFaultPlan installs a fault plan consulted once per I/O command
// (kinds MediaErr → StatusInternal completion, Timeout → the command is
// swallowed and never completes, exercising host deadlines, Corrupt →
// one byte of a read's returned payload is flipped in flight; the
// stored data stays intact, so a reread succeeds). A nil or zero-rate
// plan leaves command execution bit-identical to an unhooked device.
// The functional Sync path is never affected.
func (d *Device) SetFaultPlan(p *fault.Plan) { d.plan = p }

// queuePair holds the submission queue as a head-indexed FIFO: pushes
// append, pops advance head, and the backing array recycles once
// drained, so steady submission stops allocating.
type queuePair struct {
	id       int
	pending  []Command
	head     int
	inFlight int
	depth    int
}

func (qp *queuePair) queued() int { return len(qp.pending) - qp.head }

// New creates a device.
func New(eng *sim.Engine, cfg Config) *Device {
	if cfg.BlockSize <= 0 || cfg.Blocks <= 0 || cfg.Channels <= 0 || cfg.QueueDepth <= 0 {
		panic("nvme: invalid config")
	}
	d := &Device{
		cfg:      cfg,
		eng:      eng,
		channels: make([]sim.Time, cfg.Channels),
		store:    make(map[int64][]byte),
		evName:   "nvme:" + cfg.Name,
	}
	for i := 0; i < cfg.MaxQueuePairs; i++ {
		d.queues = append(d.queues, &queuePair{id: i, depth: cfg.QueueDepth})
	}
	return d
}

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// Bind wires the device to its link and host driver. dma may be nil in
// unit tests (transfers then cost zero link time).
func (d *Device) Bind(dma func(size int64, done func()), interrupt func(qid int, c Completion)) {
	d.dma = dma
	d.interrupt = interrupt
}

// PCIe endpoint interface.

// PCIeName implements pcie.Device.
func (d *Device) PCIeName() string { return d.cfg.Name }

// BARSize implements pcie.Device: doorbells for every queue pair.
func (d *Device) BARSize() int64 { return 1 << 14 }

// MMIORead implements pcie.Device (queue occupancy, for diagnostics).
func (d *Device) MMIORead(off int64) uint64 {
	q := int(off / DoorbellStride)
	if q < 0 || q >= len(d.queues) {
		return ^uint64(0)
	}
	return uint64(d.queues[q].queued() + d.queues[q].inFlight)
}

// MMIOWrite implements pcie.Device: a doorbell write makes the device
// fetch and execute queued commands.
func (d *Device) MMIOWrite(off int64, _ uint64) {
	q := int(off / DoorbellStride)
	if q < 0 || q >= len(d.queues) {
		return
	}
	d.pump(d.queues[q])
}

// Enqueue places a command into SQ q. In real NVMe the SQE lives in host
// memory and the device fetches it after the doorbell; Enqueue is that
// host-memory write. It fails when the queue is at depth.
func (d *Device) Enqueue(q int, cmd Command) error {
	if q < 0 || q >= len(d.queues) {
		return ErrBadQueue
	}
	qp := d.queues[q]
	if qp.queued()+qp.inFlight >= qp.depth {
		return ErrQueueFull
	}
	if cmd.Opcode == OpWrite && len(cmd.Data) != cmd.Blocks*d.cfg.BlockSize {
		return ErrShortWrite
	}
	qp.pending = append(qp.pending, cmd)
	return nil
}

// pump starts execution of all pending commands on a queue.
func (d *Device) pump(qp *queuePair) {
	for qp.queued() > 0 {
		cmd := qp.pending[qp.head]
		qp.pending[qp.head] = Command{}
		qp.head++
		if qp.queued() == 0 {
			qp.pending = qp.pending[:0]
			qp.head = 0
		}
		qp.inFlight++
		d.execute(qp, cmd)
	}
}

// cmdCtx carries one in-flight command through its event chain with
// prebound stage functions; instances cycle through the device's free
// list. Each command takes exactly one path, so status and data set at
// schedule time are what completeFn posts.
type cmdCtx struct {
	d      *Device
	qp     *queuePair
	cmd    Command
	start  sim.Time
	status uint16
	data   []byte

	wscratch []byte // reusable write-payload copy, capacity kept

	completeFn  func() // post ctx.status/ctx.data
	readDoneFn  func() // flash read done: fetch store, start data DMA
	writeXferFn func() // write payload crossed the link: program it
	writeDoneFn func() // write cache-accept: complete
	swallowFn   func() // injected firmware hang: free the slot silently
}

func (d *Device) getCtx(qp *queuePair, cmd Command) *cmdCtx {
	var c *cmdCtx
	if n := len(d.ctxFree); n > 0 {
		c = d.ctxFree[n-1]
		d.ctxFree = d.ctxFree[:n-1]
	} else {
		c = &cmdCtx{d: d}
		c.completeFn = c.complete
		c.readDoneFn = c.readDone
		c.writeXferFn = c.writeXfer
		c.writeDoneFn = c.writeDone
		c.swallowFn = c.swallow
	}
	c.qp = qp
	c.cmd = cmd
	c.start = d.eng.Now()
	return c
}

// complete posts the completion interrupt and recycles the context.
func (c *cmdCtx) complete() {
	d := c.d
	c.qp.inFlight--
	cpl := Completion{CID: c.cmd.CID, Status: c.status, Data: c.data}
	d.Counters.Get("completions").Add(1)
	if d.rec != nil {
		d.rec.Span("nvme.dev", opName(c.cmd.Opcode), c.cmd.Span, c.start, d.eng.Now())
	}
	qid := c.qp.id
	c.data = nil
	c.cmd = Command{}
	c.qp = nil
	d.ctxFree = append(d.ctxFree, c)
	if d.interrupt != nil {
		d.interrupt(qid, cpl)
	}
}

func (c *cmdCtx) swallow() {
	d := c.d
	c.qp.inFlight--
	c.cmd = Command{}
	c.qp = nil
	d.ctxFree = append(d.ctxFree, c)
}

// fail schedules a completion with the given status after delay.
func (c *cmdCtx) fail(status uint16, delay sim.Duration) {
	c.status = status
	c.data = nil
	c.d.after(delay, c.completeFn)
}

// execute models one command: SQE fetch DMA, flash access on the LBA's
// channel, data DMA, CQE post, interrupt.
func (d *Device) execute(qp *queuePair, cmd Command) {
	c := d.getCtx(qp, cmd)
	if cmd.NSID != 1 {
		c.fail(StatusInvalidNS, d.cfg.CtrlOverhead)
		return
	}
	switch cmd.Opcode {
	case OpFlush:
		// All cached writes are durable once programmed; flush waits for
		// the busiest channel to drain.
		var horizon sim.Time
		for _, t := range d.channels {
			if t > horizon {
				horizon = t
			}
		}
		wait := horizon.Sub(d.eng.Now())
		if wait < 0 {
			wait = 0
		}
		c.status, c.data = StatusOK, nil
		d.after(d.cfg.CtrlOverhead+wait, c.completeFn)
		d.Counters.Get("flushes").Add(1)
	case OpRead, OpWrite:
		if cmd.LBA < 0 || cmd.Blocks <= 0 || cmd.LBA+int64(cmd.Blocks) > d.cfg.Blocks {
			c.fail(StatusLBARange, d.cfg.CtrlOverhead)
			return
		}
		if d.failProb > 0 && d.failRand.Float64() < d.failProb {
			d.Counters.Get("injected_faults").Add(1)
			c.fail(StatusInternal, d.cfg.CtrlOverhead+d.cfg.ReadLatency)
			return
		}
		if d.plan.Roll(fault.Timeout) {
			// Firmware hang: the command is consumed — its slot frees once
			// the controller abandons it — but no completion is ever
			// posted. Only a host-side deadline surfaces it.
			d.Counters.Get("injected_timeouts").Add(1)
			d.after(d.cfg.CtrlOverhead, c.swallowFn)
			return
		}
		if d.plan.Roll(fault.MediaErr) {
			d.Counters.Get("injected_media_errors").Add(1)
			c.fail(StatusInternal, d.cfg.CtrlOverhead+d.cfg.ReadLatency)
			return
		}
		d.accessFlash(c)
	default:
		c.fail(StatusInvalidOp, d.cfg.CtrlOverhead)
	}
}

func (d *Device) accessFlash(c *cmdCtx) {
	cmd := &c.cmd
	isRead := cmd.Opcode == OpRead
	// Each block lands on channel lba%Channels; the command finishes when
	// its slowest block does. Channels serialize their own operations.
	perBlock := d.cfg.ProgramLatency
	if isRead {
		perBlock = d.cfg.ReadLatency
	}
	var latest sim.Time
	now := d.eng.Now()
	for i := 0; i < cmd.Blocks; i++ {
		ch := int((cmd.LBA + int64(i)) % int64(d.cfg.Channels))
		start := d.channels[ch]
		if start < now {
			start = now
		}
		end := start.Add(perBlock)
		d.channels[ch] = end
		if end > latest {
			latest = end
		}
	}
	flashDone := d.cfg.CtrlOverhead + latest.Sub(now)
	if isRead {
		d.Counters.Get("read_blocks").Add(int64(cmd.Blocks))
		d.after(flashDone, c.readDoneFn)
	} else {
		d.Counters.Get("write_blocks").Add(int64(cmd.Blocks))
		// Data crosses the link first, then programs behind write cache;
		// completion is posted at cache-accept time (flash programs in
		// the background, visible to Flush). The payload is copied into
		// the context's reusable scratch: the caller's buffer may be a
		// pooled capsule that is recycled before the link transfer lands.
		c.wscratch = append(c.wscratch[:0], cmd.Data...)
		c.cmd.Data = nil
		d.transfer(int64(cmd.Blocks)*int64(d.cfg.BlockSize), c.writeXferFn)
	}
}

// readDone fires when the slowest flash channel has the data.
func (c *cmdCtx) readDone() {
	d := c.d
	data := d.readStore(c.cmd.LBA, c.cmd.Blocks)
	if d.plan.Roll(fault.Corrupt) && len(data) > 0 {
		// Transient in-flight corruption: the returned copy is
		// damaged, the store is not, so a checksum-driven reread
		// observes clean data.
		d.Counters.Get("injected_corruptions").Add(1)
		data[d.plan.Pick(len(data))] ^= 0xA5
	}
	c.status, c.data = StatusOK, data
	d.transfer(int64(c.cmd.Blocks)*int64(d.cfg.BlockSize), c.completeFn)
}

// writeXfer fires when the write payload has crossed the link.
func (c *cmdCtx) writeXfer() {
	d := c.d
	d.writeStore(c.cmd.LBA, c.wscratch)
	c.status, c.data = StatusOK, nil
	d.after(d.cfg.CtrlOverhead, c.writeDoneFn)
}

func (c *cmdCtx) writeDone() { c.complete() }

func (d *Device) transfer(size int64, done func()) {
	if d.dma == nil {
		done()
		return
	}
	d.dma(size, done)
}

func (d *Device) after(delay sim.Duration, fn func()) {
	d.eng.After(delay, d.evName, fn)
}

func (d *Device) readStore(lba int64, blocks int) []byte {
	out := make([]byte, blocks*d.cfg.BlockSize)
	d.readStoreInto(out, lba, blocks)
	return out
}

func (d *Device) readStoreInto(dst []byte, lba int64, blocks int) {
	bs := d.cfg.BlockSize
	for i := 0; i < blocks; i++ {
		span := dst[i*bs : (i+1)*bs]
		if b, ok := d.store[lba+int64(i)]; ok {
			copy(span, b)
		} else {
			clear(span) // unwritten blocks read back as zeros
		}
	}
}

func (d *Device) writeStore(lba int64, data []byte) {
	bs := d.cfg.BlockSize
	for i := 0; i*bs < len(data); i++ {
		// Blocks are stored at full block size; rewriting one reuses its
		// buffer, zero-padding past a short final fragment.
		blk := d.store[lba+int64(i)]
		if blk == nil {
			blk = make([]byte, bs)
			d.store[lba+int64(i)] = blk
		}
		n := copy(blk, data[i*bs:])
		clear(blk[n:])
	}
}

// StoredBlocks reports how many distinct blocks have been written (for
// tests and capacity accounting).
func (d *Device) StoredBlocks() int { return len(d.store) }

// Functional (synchronous) access path. The storage structures above the
// segment store execute their logic functionally and charge modeled
// latency separately; these accessors move bytes without going through
// the queue-pair machinery. AccessCost supplies the matching latency.

// ReadSync returns the payload of blocks [lba, lba+n) immediately.
func (d *Device) ReadSync(lba int64, blocks int) []byte {
	return d.readStore(lba, blocks)
}

// ReadSyncInto copies blocks [lba, lba+n) into dst, which must hold at
// least n full blocks. It is the allocation-free form of ReadSync.
func (d *Device) ReadSyncInto(dst []byte, lba int64, blocks int) {
	d.readStoreInto(dst, lba, blocks)
}

// WriteSync stores data at lba immediately.
func (d *Device) WriteSync(lba int64, data []byte) {
	d.writeStore(lba, data)
}

// AccessCost models the device-side latency of reading or writing n
// blocks in one command: controller overhead plus flash time with
// channel-level parallelism.
func (d *Device) AccessCost(op uint8, blocks int) sim.Duration {
	per := d.cfg.ProgramLatency
	if op == OpRead {
		per = d.cfg.ReadLatency
	}
	waves := (blocks + d.cfg.Channels - 1) / d.cfg.Channels
	if waves < 1 {
		waves = 1
	}
	return d.cfg.CtrlOverhead + sim.Duration(waves)*per
}

// Device returns the underlying device of a host (functional access).
func (h *Host) Device() *Device { return h.dev }

// Host is the driver side: it owns CID allocation and pending-command
// tracking, submits through Enqueue + a doorbell ring, and dispatches
// completions back to per-command callbacks.
type Host struct {
	dev      *Device
	ring     func(q int) // doorbell write (via PCIe MMIO in the full system)
	nextCID  uint16
	pending  map[uint16]func(Completion)
	deadline sim.Duration // 0 = no deadline (the default)
	timers   map[uint16]sim.EventRef
	rec      *telemetry.Recorder
	opFree   []*hostOp
	QueueErr int64
	Timeouts int64 // deadline-synthesized StatusTimeout completions
}

// SetRecorder arms the telemetry plane: one span per submitted
// command covering submission to completion callback (queueing + the
// whole device round trip), named by opcode. Disarmed (nil) the
// Submit path is bit-identical to the unhooked driver.
func (h *Host) SetRecorder(rec *telemetry.Recorder) { h.rec = rec }

// NewHost builds a driver for dev. ring performs the doorbell write for
// queue q; pass nil to ring the device directly (unit tests).
func NewHost(dev *Device, ring func(q int)) *Host {
	h := &Host{dev: dev, ring: ring, pending: make(map[uint16]func(Completion))}
	dev.Bind(dev.dma, h.onInterrupt) // preserve any existing dma hook
	return h
}

// SetDeadline arms a per-command timeout: if the device has not posted
// a completion within d of submission, the host synthesizes a
// StatusTimeout completion and forgets the command (a late device
// completion for it is dropped). Zero — the default — disables
// deadlines and leaves submission bit-identical to the unarmed driver.
func (h *Host) SetDeadline(d sim.Duration) {
	h.deadline = d
	if d > 0 && h.timers == nil {
		h.timers = make(map[uint16]sim.EventRef)
	}
}

func (h *Host) onInterrupt(qid int, c Completion) {
	if cb, ok := h.pending[c.CID]; ok {
		delete(h.pending, c.CID)
		if ref, armed := h.timers[c.CID]; armed {
			h.dev.eng.Cancel(ref)
			delete(h.timers, c.CID)
		}
		cb(c)
	}
}

// Submit issues cmd on queue q and invokes cb on completion.
func (h *Host) Submit(q int, cmd Command, cb func(Completion)) error {
	h.nextCID++
	cmd.CID = h.nextCID
	if err := h.dev.Enqueue(q, cmd); err != nil {
		h.QueueErr++
		return err
	}
	if cb != nil && h.rec != nil {
		submitted := h.dev.eng.Now()
		op, span, inner := opName(cmd.Opcode), cmd.Span, cb
		cb = func(c Completion) {
			h.rec.Span("nvme.host", op, span, submitted, h.dev.eng.Now())
			inner(c)
		}
	}
	if cb != nil {
		h.pending[cmd.CID] = cb
		if h.deadline > 0 {
			cid := cmd.CID
			h.timers[cid] = h.dev.eng.After(h.deadline, "nvme.deadline:"+h.dev.cfg.Name, func() {
				if pcb, ok := h.pending[cid]; ok {
					delete(h.pending, cid)
					delete(h.timers, cid)
					h.Timeouts++
					pcb(Completion{CID: cid, Status: StatusTimeout})
				}
			})
		}
	}
	if h.ring != nil {
		h.ring(q)
	} else {
		h.dev.MMIOWrite(int64(q)*DoorbellStride, 1)
	}
	return nil
}

// hostOp adapts a user read/status callback to the Submit completion
// shape without a per-call closure; instances cycle through the host's
// free list. dispatch recycles before invoking the callback so it can
// immediately reissue.
type hostOp struct {
	h      *Host
	readCb func(data []byte, status uint16)
	stCb   func(status uint16)
	fn     func(Completion) // prebound dispatch
}

func (h *Host) getOp() *hostOp {
	if n := len(h.opFree); n > 0 {
		op := h.opFree[n-1]
		h.opFree = h.opFree[:n-1]
		return op
	}
	op := &hostOp{h: h}
	op.fn = op.dispatch
	return op
}

func (op *hostOp) dispatch(c Completion) {
	h := op.h
	readCb, stCb := op.readCb, op.stCb
	op.readCb, op.stCb = nil, nil
	h.opFree = append(h.opFree, op)
	if readCb != nil {
		readCb(c.Data, c.Status)
	} else if stCb != nil {
		stCb(c.Status)
	}
}

// putOp returns an op whose submission failed before it could complete.
func (h *Host) putOp(op *hostOp) {
	op.readCb, op.stCb = nil, nil
	h.opFree = append(h.opFree, op)
}

// Read reads blocks starting at lba on queue q.
func (h *Host) Read(q int, lba int64, blocks int, cb func(data []byte, status uint16)) error {
	return h.ReadSpan(q, lba, blocks, 0, cb)
}

// ReadSpan is Read carrying a request-scoped trace context down the
// command path.
func (h *Host) ReadSpan(q int, lba int64, blocks int, span telemetry.RequestID, cb func(data []byte, status uint16)) error {
	op := h.getOp()
	op.readCb = cb
	if err := h.Submit(q, Command{Opcode: OpRead, NSID: 1, LBA: lba, Blocks: blocks, Span: span}, op.fn); err != nil {
		h.putOp(op)
		return err
	}
	return nil
}

// Write writes data (len = blocks × BlockSize) at lba on queue q.
func (h *Host) Write(q int, lba int64, data []byte, cb func(status uint16)) error {
	return h.WriteSpan(q, lba, data, 0, cb)
}

// WriteSpan is Write carrying a request-scoped trace context.
func (h *Host) WriteSpan(q int, lba int64, data []byte, span telemetry.RequestID, cb func(status uint16)) error {
	bs := h.dev.cfg.BlockSize
	if len(data)%bs != 0 {
		return fmt.Errorf("%w: %d bytes", ErrShortWrite, len(data))
	}
	op := h.getOp()
	op.stCb = cb
	cmd := Command{Opcode: OpWrite, NSID: 1, LBA: lba, Blocks: len(data) / bs, Data: data, Span: span}
	if err := h.Submit(q, cmd, op.fn); err != nil {
		h.putOp(op)
		return err
	}
	return nil
}

// DeviceBlocks returns the capacity of the underlying device in blocks.
func (h *Host) DeviceBlocks() int64 { return h.dev.cfg.Blocks }

// BlockSize returns the device block size in bytes.
func (h *Host) BlockSize() int { return h.dev.cfg.BlockSize }

// Flush waits for all programmed data to be durable.
func (h *Host) Flush(q int, cb func(status uint16)) error {
	return h.FlushSpan(q, 0, cb)
}

// FlushSpan is Flush carrying a request-scoped trace context.
func (h *Host) FlushSpan(q int, span telemetry.RequestID, cb func(status uint16)) error {
	op := h.getOp()
	op.stCb = cb
	if err := h.Submit(q, Command{Opcode: OpFlush, NSID: 1, Span: span}, op.fn); err != nil {
		h.putOp(op)
		return err
	}
	return nil
}
