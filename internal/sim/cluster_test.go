package sim

import (
	"fmt"
	"strings"
	"testing"
)

const testLA = 5 * Microsecond

// clusterLog runs a small LP mesh under the given shard count and
// returns a textual log of every delivery, in delivery order per LP.
// The scenario: nLP logical processes, each with a private Rand seeded
// from (seed, lp); each LP starts with one self-scheduled engine event
// and on every envelope received sends to a random peer with a random
// delay ≥ lookahead, until a hop budget runs out. All state is per-LP,
// so the log must be identical for any shard count.
func clusterLog(t *testing.T, shards, nLP int, seed uint64) string {
	t.Helper()
	cl := NewCluster(shards, seed, testLA)
	var logs = make([]*strings.Builder, nLP)
	rngs := make([]*Rand, nLP)
	lps := make([]LP, nLP)
	for i := 0; i < nLP; i++ {
		logs[i] = &strings.Builder{}
		rngs[i] = NewRand(seed ^ (uint64(i+1) * 0x9e3779b97f4a7c15))
		i := i
		lps[i] = cl.AddLP(i%shards, func(sh *Shard, env Envelope) {
			fmt.Fprintf(logs[i], "%d@%d from %d kind=%d a=%d data=%q\n",
				env.Dst, env.At, env.Src, env.Kind, env.A, env.Data)
			if env.A == 0 {
				return // hop budget exhausted
			}
			r := rngs[i]
			peer := lps[r.Intn(nLP)]
			delay := testLA + Duration(r.Intn(1000))*Nanosecond
			sh.Send(env.Dst, peer, delay, env.Kind, env.A-1, env.B, []byte{byte(env.A), byte(i)})
		})
	}
	// Seed traffic: every LP fires one initial send from an engine event.
	for i := 0; i < nLP; i++ {
		i := i
		sh := cl.Shard(cl.ShardOf(lps[i]))
		sh.Engine().At(Time(i)*Time(Microsecond), "boot", func() {
			peer := lps[rngs[i].Intn(nLP)]
			sh.Send(lps[i], peer, testLA, 7, 12, 0, []byte("boot"))
		})
	}
	cl.Run()
	var all strings.Builder
	for i := 0; i < nLP; i++ {
		all.WriteString(logs[i].String())
	}
	return all.String()
}

func TestClusterShardCountInvariance(t *testing.T) {
	const nLP = 8
	for _, seed := range []uint64{1, 2, 42} {
		want := clusterLog(t, 1, nLP, seed)
		if want == "" {
			t.Fatalf("seed %d: empty delivery log", seed)
		}
		for _, shards := range []int{2, 4, 8} {
			got := clusterLog(t, shards, nLP, seed)
			if got != want {
				t.Errorf("seed %d: %d-shard log differs from 1-shard log\n1 shard:\n%s\n%d shards:\n%s",
					seed, shards, want, shards, got)
			}
		}
	}
}

func TestClusterRepeatable(t *testing.T) {
	a := clusterLog(t, 4, 8, 3)
	b := clusterLog(t, 4, 8, 3)
	if a != b {
		t.Fatal("same seed, same shard count, different logs")
	}
}

// TestClusterSameTimeOrdering pins the tie-break for envelopes due at
// the same instant: (src LP, send order), regardless of send call
// interleaving or shard layout.
func TestClusterSameTimeOrdering(t *testing.T) {
	for _, shards := range []int{1, 2, 3} {
		cl := NewCluster(shards, 1, testLA)
		var got []string
		sink := cl.AddLP(0, func(sh *Shard, env Envelope) {
			got = append(got, fmt.Sprintf("%d/%d", env.Src, env.A))
		})
		mk := func(shard int) (LP, *Shard) {
			var lp LP
			lp = cl.AddLP(shard%shards, func(sh *Shard, env Envelope) {})
			return lp, cl.Shard(shard % shards)
		}
		a, shA := mk(0)
		b, shB := mk(1)
		// Both LPs target the same delivery instant; b sends first.
		shB.Engine().At(0, "b", func() {
			shB.Send(b, sink, testLA, 0, 1, 0, nil)
			shB.Send(b, sink, testLA, 0, 2, 0, nil)
		})
		shA.Engine().At(0, "a", func() {
			shA.Send(a, sink, testLA, 0, 1, 0, nil)
		})
		cl.Run()
		want := fmt.Sprintf("%d/1,%d/1,%d/2", a, b, b)
		if strings.Join(got, ",") != want {
			t.Errorf("shards=%d: delivery order %v, want %s", shards, got, want)
		}
	}
}

func TestClusterEnvelopeDataCopied(t *testing.T) {
	cl := NewCluster(2, 1, testLA)
	var seen []byte
	sink := cl.AddLP(1, func(sh *Shard, env Envelope) {
		seen = append([]byte(nil), env.Data...)
	})
	src := cl.AddLP(0, func(sh *Shard, env Envelope) {})
	sh := cl.Shard(0)
	payload := []byte{1, 2, 3}
	sh.Engine().At(0, "send", func() {
		sh.Send(src, sink, testLA, 0, 0, 0, payload)
		payload[0] = 99 // mutate after Send: receiver must see the original
	})
	cl.Run()
	if len(seen) != 3 || seen[0] != 1 {
		t.Fatalf("receiver saw %v, want [1 2 3]", seen)
	}
}

func TestClusterStats(t *testing.T) {
	cl := NewCluster(2, 1, testLA)
	lpA := cl.AddLP(0, func(sh *Shard, env Envelope) {})
	lpB := cl.AddLP(1, func(sh *Shard, env Envelope) {})
	sh := cl.Shard(0)
	sh.Engine().At(0, "send", func() {
		sh.Send(lpA, lpB, testLA, 0, 0, 0, nil)
	})
	cl.Run()
	st := cl.Stats()
	if len(st) != 2 {
		t.Fatalf("got %d shard stats", len(st))
	}
	if st[0].Sends != 1 || st[1].Recvs != 1 {
		t.Errorf("sends/recvs = %d/%d, want 1/1", st[0].Sends, st[1].Recvs)
	}
	if st[0].Events == 0 || st[1].Events == 0 {
		t.Errorf("both shards should have executed events: %+v", st)
	}
	if cl.Windows() == 0 {
		t.Error("expected at least one window")
	}
	if cl.Steps() != st[0].Events+st[1].Events {
		t.Errorf("Steps %d != sum of shard events %d", cl.Steps(), st[0].Events+st[1].Events)
	}
}

func TestClusterSeedZeroShardMatchesEngine(t *testing.T) {
	// A 1-shard cluster's engine must be seeded exactly like
	// NewEngine(seed): existing experiments can run under a cluster
	// without perturbing their golden tables.
	cl := NewCluster(1, 42, testLA)
	eng := NewEngine(42)
	for i := 0; i < 8; i++ {
		if a, b := cl.Shard(0).Engine().Rand().Uint64(), eng.Rand().Uint64(); a != b {
			t.Fatalf("draw %d: cluster shard 0 rand %d != engine rand %d", i, a, b)
		}
	}
}

func TestClusterPanics(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	expectPanic("zero shards", func() { NewCluster(0, 1, testLA) })
	expectPanic("zero lookahead", func() { NewCluster(1, 1, 0) })
	cl := NewCluster(2, 1, testLA)
	expectPanic("bad shard", func() { cl.AddLP(2, func(*Shard, Envelope) {}) })
	expectPanic("nil handler", func() { cl.AddLP(0, nil) })
	a := cl.AddLP(0, func(*Shard, Envelope) {})
	b := cl.AddLP(1, func(*Shard, Envelope) {})
	expectPanic("short delay", func() {
		cl.Shard(0).Send(a, b, testLA-1, 0, 0, 0, nil)
	})
	expectPanic("wrong shard", func() {
		cl.Shard(1).Send(a, b, testLA, 0, 0, 0, nil)
	})
	cl.Run()
	expectPanic("run twice", func() { cl.Run() })
	expectPanic("add after run", func() { cl.AddLP(0, func(*Shard, Envelope) {}) })
}
