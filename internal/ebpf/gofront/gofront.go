// Package gofront compiles a restricted subset of Go — fixed-size
// integers, arrays and packed structs, bounded loops, map and helper
// access through declared intrinsics — down to the internal eBPF ISA
// (internal/ebpf), producing programs the existing verifier and the
// ehdl hardware pipeline accept unchanged.
//
// The paper's blueprint (§2.2) assumes offloads can be authored
// without an ISA expert; this package is that unlock. It is built like
// hyperlint: go/ast and go/parser only, no go/types, no imports beyond
// the standard library.
//
// Pipeline: parse → contract check + lowering to a typed IR → interval
// analysis (array-bounds proofs) → register allocation → emission.
// Every IR operation emits exactly one instruction (address-of emits
// two), and the lowering never invents control flow, so the output for
// a given source is predictable instruction by instruction. The
// differential suites in internal/apps/chase and internal/apps/fail2ban
// hold the compiler to that: the frontend-built programs must match
// the hand-assembled originals shape-for-shape.
//
// Every rejection is a Diagnostic carrying file:line:col and the
// contract rule violated; see diag.go for the rule catalog.
package gofront

import (
	"go/ast"
	"go/token"

	"hyperion/internal/ebpf"
)

// Options tune one compile.
type Options struct {
	// Consts overrides named constants declared in the source, the
	// -D of this compiler. Deployments use it to parameterize a
	// committed program (e.g. a ban threshold) without editing it.
	Consts map[string]int64
}

// MapDecl is one //hyperion:map directive: the maps the program
// expects the runtime to provide, by id.
type MapDecl struct {
	Name      string
	ID        int
	KeySize   int
	ValueSize int
	Entries   int
}

// Program is a successful compile.
type Program struct {
	// Insns is the emitted program, ready for ebpf.Verify, the VM, and
	// ehdl.Compile.
	Insns []ebpf.Instruction
	// Entry is the exported entry function's name.
	Entry string
	// CtxSize is the byte size of the entry function's context struct.
	CtxSize int
	// Maps lists the //hyperion:map declarations, for harnesses that
	// must materialize the map set (hyperionctl build does).
	Maps []MapDecl
}

// Compile builds src (one restricted-Go file) into an eBPF program.
// filename is used in diagnostic positions only. On rejection the
// returned error is a DiagList; every entry names the contract rule
// violated.
func Compile(filename string, src []byte, opts Options) (*Program, error) {
	c := &compiler{
		fset:    token.NewFileSet(),
		structs: map[string]*StructType{},
		consts:  map[string]int64{},
		helpers: map[string]*helperDecl{},
		opts:    opts,
	}
	c.errs = &errs{fset: c.fset}
	if err := c.parse(filename, src); err != nil {
		return nil, err
	}
	fn := newLowerer(c)
	fn.lowerFunc(c.entry)
	if err := c.errs.err(); err != nil {
		return nil, err
	}
	checkBounds(c, fn.ir)
	if err := c.errs.err(); err != nil {
		return nil, err
	}
	alloc := allocate(c, fn)
	if err := c.errs.err(); err != nil {
		return nil, err
	}
	insns := emit(c, fn.ir, alloc)
	if err := c.errs.err(); err != nil {
		return nil, err
	}
	return &Program{
		Insns:   insns,
		Entry:   c.entry.Name.Name,
		CtxSize: c.ctxType.Size(),
		Maps:    c.maps,
	}, nil
}

// compiler carries per-compile state shared by all passes.
type compiler struct {
	fset    *token.FileSet
	errs    *errs
	opts    Options
	structs map[string]*StructType
	consts  map[string]int64
	helpers map[string]*helperDecl
	maps    []MapDecl
	entry   *ast.FuncDecl
	ctxType *StructType
	ctxName string // entry's context parameter name
	retType IntType
}

// helperDecl is a bodyless function declaration carrying a
// //hyperion:helper directive — the program's window onto the
// runtime's helper table.
type helperDecl struct {
	name   string
	id     int64
	params []Type
	result Type // nil for no result
	pos    token.Pos
}
