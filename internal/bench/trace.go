package bench

import (
	"fmt"
	"os"
	"path/filepath"

	"hyperion/internal/telemetry"
)

// TraceArtifacts names the files WriteTraceArtifacts produced for one
// traced experiment run.
type TraceArtifacts struct {
	TraceJSON string // Chrome trace-event JSON (load in Perfetto / chrome://tracing)
	HistTXT   string // per-layer latency histograms and counters
	CritTXT   string // per-request critical-path summary
}

// RunTracedExperiment executes exp with the telemetry plane armed on a
// fresh recorder named after the experiment, returning the Result and
// the recorder holding its spans. Callers needing the disarmed golden
// output should use exp.Run / exp.RunSeeded instead — the two produce
// byte-identical tables at the same seed. Returns ok=false when the
// experiment has no traced form.
func RunTracedExperiment(exp Experiment, seed uint64) (Result, *telemetry.Recorder, bool) {
	if exp.RunTraced == nil {
		return Result{}, nil, false
	}
	rec := telemetry.NewRecorder(exp.ID + "." + exp.Name)
	res := exp.RunTraced(seed, rec)
	return res, rec, true
}

// WriteTraceArtifacts writes the three standard artifacts for one
// traced run under dir: <id>.trace.json, <id>.hist.txt, and
// <id>.critpath.txt. dir must already exist.
func WriteTraceArtifacts(dir, id string, rec *telemetry.Recorder) (TraceArtifacts, error) {
	a := TraceArtifacts{
		TraceJSON: filepath.Join(dir, id+".trace.json"),
		HistTXT:   filepath.Join(dir, id+".hist.txt"),
		CritTXT:   filepath.Join(dir, id+".critpath.txt"),
	}
	if err := os.WriteFile(a.TraceJSON, rec.ChromeTrace(), 0o644); err != nil {
		return a, fmt.Errorf("bench: writing trace: %w", err)
	}
	if err := os.WriteFile(a.HistTXT, []byte(rec.HistogramDump()), 0o644); err != nil {
		return a, fmt.Errorf("bench: writing histograms: %w", err)
	}
	if err := os.WriteFile(a.CritTXT, []byte(rec.CriticalPath()), 0o644); err != nil {
		return a, fmt.Errorf("bench: writing critical path: %w", err)
	}
	return a, nil
}
