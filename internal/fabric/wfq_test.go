package fabric

import (
	"testing"

	"hyperion/internal/fault"
	"hyperion/internal/sim"
	"hyperion/internal/telemetry"
)

// drain pushes n items of size bytes on port p.
func wfqFill(t *testing.T, w *WFQArbiter, port, n, bytes int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := w.Push(port, Item{Payload: port, Bytes: bytes}); err != nil {
			t.Fatalf("push port %d item %d: %v", port, i, err)
		}
	}
}

func TestWFQWeightedShare(t *testing.T) {
	// Two backlogged ports with weights 3:1 must split the bus 3:1 over
	// a long run of equal-size items.
	eng := sim.NewEngine(1)
	var got []int
	w := NewWFQArbiter(eng, "t", 250_000_000, 64, 1024, 2, func(it Item) {
		got = append(got, it.Payload.(int))
	})
	w.SetWeight(0, 3)
	w.SetWeight(1, 1)
	wfqFill(t, w, 0, 400, 64)
	wfqFill(t, w, 1, 400, 64)
	// Stop while both are still backlogged: run a fixed window.
	eng.RunUntil(sim.Time(400 * 4 * 1000)) // 400 beats' worth of time
	var n0, n1 int
	for _, p := range got {
		if p == 0 {
			n0++
		} else {
			n1++
		}
	}
	if n0+n1 == 0 {
		t.Fatal("nothing delivered")
	}
	ratio := float64(n0) / float64(n1)
	if ratio < 2.8 || ratio > 3.2 {
		t.Fatalf("weighted share off: %d vs %d (ratio %.2f, want ~3)", n0, n1, ratio)
	}
}

func TestWFQWorkConservingAndOrder(t *testing.T) {
	// An idle competitor must not slow a lone port, and per-port FIFO
	// order is preserved.
	eng := sim.NewEngine(1)
	var got []int
	w := NewWFQArbiter(eng, "t", 250_000_000, 64, 256, 4, func(it Item) {
		got = append(got, it.Payload.(int))
	})
	for i := 0; i < 100; i++ {
		if err := w.Push(2, Item{Payload: i, Bytes: 64}); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	if len(got) != 100 {
		t.Fatalf("delivered %d of 100", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("out of order at %d: got %d", i, v)
		}
	}
	// Work conservation: 100 equal items × 1 beat at 4 ns/beat.
	want := sim.Duration(100) * sim.Duration(int64(sim.Second)/250_000_000)
	if eng.Now().Sub(sim.Time(0)) != want {
		t.Fatalf("lone port slowed: finished at %v, want %v", eng.Now(), want)
	}
}

func TestWFQStarvationFree(t *testing.T) {
	// A weight-1 port against a weight-16 flood still gets served: DRR
	// guarantees each backlogged port at least one item per accumulated
	// quantum, so the weak port's first item completes within a bounded
	// number of strong-port items.
	eng := sim.NewEngine(1)
	var weakAt sim.Time
	var strongBefore int
	w := NewWFQArbiter(eng, "t", 250_000_000, 64, 2048, 2, func(it Item) {
		if it.Payload.(int) == 1 {
			if weakAt == 0 {
				weakAt = eng.Now()
			}
		} else if weakAt == 0 {
			strongBefore++
		}
	})
	w.SetWeight(0, 16)
	w.SetWeight(1, 1)
	wfqFill(t, w, 0, 1000, 512) // 8 beats each
	wfqFill(t, w, 1, 1, 512)
	eng.Run()
	if weakAt == 0 {
		t.Fatal("weight-1 port starved")
	}
	// Weak port needs 8 beats = 8 rounds of credit; each round the
	// strong port may move 16 beats = 2 items. Allow slack.
	if strongBefore > 32 {
		t.Fatalf("weak port waited behind %d strong items (bound 32)", strongBefore)
	}
}

func TestWFQBackpressureAndFlush(t *testing.T) {
	eng := sim.NewEngine(1)
	var delivered int
	w := NewWFQArbiter(eng, "t", 250_000_000, 64, 4, 2, func(it Item) { delivered++ })
	wfqFill(t, w, 0, 4, 64) // one goes in service, three queue... depth counts queued only
	// Port 0 now has 3 queued (head popped into service); one more fits.
	if err := w.Push(0, Item{Payload: 0, Bytes: 64}); err != nil {
		t.Fatalf("push within depth: %v", err)
	}
	for w.Len(0) < 4 {
		if err := w.Push(0, Item{Payload: 0, Bytes: 64}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Push(0, Item{Payload: 0, Bytes: 64}); err != ErrStreamFull {
		t.Fatalf("overfull push: got %v, want ErrStreamFull", err)
	}
	var flushed []Item
	w.SetOnFlush(func(it Item) { flushed = append(flushed, it) })
	items := w.Flush(0)
	if len(items) != 4 || len(flushed) != 4 {
		t.Fatalf("flush returned %d items, observer saw %d (want 4)", len(items), len(flushed))
	}
	eng.Run()
	// Only the in-service item reaches the sink.
	if delivered != 1 {
		t.Fatalf("delivered %d after flush, want 1 (the in-service item)", delivered)
	}
	_, _, dropped, fl := w.PortStats(0)
	if dropped != 1 || fl != 4 {
		t.Fatalf("port stats dropped=%d flushed=%d, want 1/4", dropped, fl)
	}
}

func TestWFQFaultDropResolves(t *testing.T) {
	// An armed Drop rate squashes items on the bus but every squashed
	// item is observed via OnDrop — nothing vanishes silently.
	eng := sim.NewEngine(1)
	var delivered, dropped int
	w := NewWFQArbiter(eng, "t", 250_000_000, 64, 1024, 1, func(it Item) { delivered++ })
	w.SetOnDrop(func(it Item) { dropped++ })
	plan := fault.NewPlan(7, "wfq").Set(fault.Drop, 0.2)
	w.SetFaultPlan(plan)
	wfqFill(t, w, 0, 500, 64)
	eng.Run()
	if delivered+dropped != 500 {
		t.Fatalf("delivered %d + dropped %d != 500", delivered, dropped)
	}
	if dropped == 0 {
		t.Fatal("20% drop rate injected nothing over 500 items")
	}
	if int64(dropped) != w.FaultDrops {
		t.Fatalf("observer saw %d, counter says %d", dropped, w.FaultDrops)
	}
}

func TestWFQDeterministicAndTelemetryNeutral(t *testing.T) {
	// Same seed, same pushes → identical delivery order and timing; an
	// armed recorder must not change either.
	run := func(rec *telemetry.Recorder) (order []int, at []sim.Time) {
		eng := sim.NewEngine(1)
		rng := sim.NewRand(42)
		w := NewWFQArbiter(eng, "t", 250_000_000, 64, 512, 3, func(it Item) {
			order = append(order, it.Payload.(int))
			at = append(at, eng.Now())
		})
		w.SetRecorder(rec)
		w.SetWeight(0, 1)
		w.SetWeight(1, 2)
		w.SetWeight(2, 4)
		for i := 0; i < 300; i++ {
			p := int(rng.Intn(3))
			sz := 64 + int(rng.Intn(8))*64
			port, bytes := p, sz
			eng.At(sim.Time(i*100), "push", func() {
				_ = w.Push(port, Item{Payload: port, Bytes: bytes})
			})
		}
		eng.Run()
		return
	}
	o1, t1 := run(nil)
	o2, t2 := run(nil)
	rec := telemetry.NewRecorder("wfq-test")
	o3, t3 := run(rec)
	if len(o1) == 0 {
		t.Fatal("no deliveries")
	}
	for i := range o1 {
		if o1[i] != o2[i] || t1[i] != t2[i] {
			t.Fatalf("nondeterministic at %d", i)
		}
		if o1[i] != o3[i] || t1[i] != t3[i] {
			t.Fatalf("armed recorder perturbed delivery at %d", i)
		}
	}
	if rec.Events() == 0 {
		t.Fatal("armed recorder captured no spans")
	}
}
