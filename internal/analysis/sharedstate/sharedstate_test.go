package sharedstate_test

import (
	"testing"

	"hyperion/internal/analysis/analysistest"
	"hyperion/internal/analysis/sharedstate"
)

func TestSharedstate(t *testing.T) {
	analysistest.Run(t, "../testdata", sharedstate.Analyzer,
		"sharedstate", "sharedstate_harness")
}
