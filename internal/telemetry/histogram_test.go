package telemetry

import (
	"sort"
	"testing"

	"hyperion/internal/sim"
)

// exactQuantile is the nearest-rank quantile over a sorted sample set,
// the reference the log2 estimate is checked against.
func exactQuantile(sorted []sim.Duration, q float64) sim.Duration {
	rank := int(q * float64(len(sorted)))
	if float64(rank) < q*float64(len(sorted)) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// sampleSets generates deterministic sample distributions from seeded
// sim.Rand streams — one per shape the datapath actually produces.
func sampleSets() map[string][]sim.Duration {
	sets := make(map[string][]sim.Duration)
	uniform := sim.NewRand(11)
	var u []sim.Duration
	for i := 0; i < 500; i++ {
		u = append(u, uniform.Duration(sim.Nanosecond, sim.Millisecond))
	}
	sets["uniform"] = u
	exp := sim.NewRand(12)
	var e []sim.Duration
	for i := 0; i < 500; i++ {
		e = append(e, exp.Exp(10*sim.Microsecond))
	}
	sets["exponential"] = e
	// Heavily repeated values exercise bucket-boundary ranks.
	rep := sim.NewRand(13)
	var r []sim.Duration
	for i := 0; i < 300; i++ {
		r = append(r, sim.Duration(1+rep.Intn(4))*sim.Microsecond)
	}
	sets["repeated"] = r
	sets["single"] = []sim.Duration{42 * sim.Nanosecond}
	sets["with-zero"] = []sim.Duration{0, sim.Nanosecond, 2 * sim.Nanosecond}
	return sets
}

// TestQuantileWithinOneBucket: for every distribution and quantile, the
// log2 estimate is ≤ the exact nearest-rank value and within one
// power-of-two bucket of it (exact < 2·estimate for positive samples).
func TestQuantileWithinOneBucket(t *testing.T) {
	for name, samples := range sampleSets() {
		var h Histogram
		sorted := append([]sim.Duration(nil), samples...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for _, s := range samples {
			h.Observe(s)
		}
		for _, q := range []float64{0, 0.01, 0.25, 0.50, 0.90, 0.99, 1} {
			est, exact := h.Quantile(q), exactQuantile(sorted, q)
			if est > exact {
				t.Errorf("%s q=%v: estimate %d exceeds exact %d", name, q, est, exact)
			}
			if exact > 0 && exact >= 2*est && est < h.Quantile(1) {
				// est below exact's bucket floor would mean > one bucket of
				// error; the clamp to max can only pull the estimate up.
				t.Errorf("%s q=%v: estimate %d more than one bucket below exact %d", name, q, est, exact)
			}
			if est < h.Min() || est > h.Max() {
				t.Errorf("%s q=%v: estimate %d outside observed [%d, %d]", name, q, est, h.Min(), h.Max())
			}
		}
	}
}

// TestMergeEqualsConcatenation: merge(h1, h2) must be indistinguishable
// from observing the concatenated sample stream.
func TestMergeEqualsConcatenation(t *testing.T) {
	rng := sim.NewRand(21)
	var a, b, all Histogram
	for i := 0; i < 400; i++ {
		s := rng.Duration(0, 10*sim.Microsecond)
		if i%3 == 0 {
			a.Observe(s)
		} else {
			b.Observe(s)
		}
		all.Observe(s)
	}
	a.Merge(&b)
	if a.Count() != all.Count() || a.Min() != all.Min() || a.Max() != all.Max() ||
		a.Mean() != all.Mean() {
		t.Fatalf("merge stats diverge: merged %s vs concat %s", a.String(), all.String())
	}
	if a.String() != all.String() {
		t.Fatalf("merge summary diverges:\nmerged %s\nconcat %s", a.String(), all.String())
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		if a.Quantile(q) != all.Quantile(q) {
			t.Errorf("q=%v: merged %d vs concat %d", q, a.Quantile(q), all.Quantile(q))
		}
	}
}

// TestHistogramZeroValueAndNil: the zero value is ready to use and a
// nil histogram is safe for every method.
func TestHistogramZeroValueAndNil(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Min() != 0 || h.Max() != 0 || h.Mean() != 0 ||
		h.Quantile(0.5) != 0 || h.String() != "n=0" {
		t.Fatalf("zero-value histogram not empty: %s", h.String())
	}
	var empty Histogram
	h.Merge(&empty) // merging empty keeps h empty
	if h.Count() != 0 {
		t.Fatal("merging an empty histogram changed the target")
	}
	var nilH *Histogram
	nilH.Observe(sim.Microsecond)
	nilH.Merge(&h)
	if nilH.Count() != 0 || nilH.Min() != 0 || nilH.Max() != 0 ||
		nilH.Mean() != 0 || nilH.Quantile(0.9) != 0 || nilH.String() != "n=0" {
		t.Fatal("nil histogram methods are not no-ops")
	}
	h.Observe(5 * sim.Nanosecond)
	h.Merge(nilH) // merging nil is a no-op
	if h.Count() != 1 {
		t.Fatal("merging nil changed the target")
	}
}

// TestBucketBoundaries pins the bucket layout: bucket b spans
// [2^(b-1), 2^b), with bucket 0 catching zero and negatives.
func TestBucketBoundaries(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1023, 10}, {1024, 11}, {1 << 40, 41},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	if BucketLower(0) != 0 || BucketLower(1) != 1 || BucketLower(11) != 1024 {
		t.Error("BucketLower does not invert bucketOf at bucket lower bounds")
	}
	for b := 1; b < numBuckets-1; b++ {
		lo := int64(BucketLower(b))
		if bucketOf(lo) != b {
			t.Fatalf("bucket %d lower bound %d maps to bucket %d", b, lo, bucketOf(lo))
		}
		if bucketOf(lo-1) >= b && lo > 1 {
			t.Fatalf("value %d below bucket %d lower bound still maps into it", lo-1, b)
		}
	}
}
