package gofront

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"testing"
)

// The diagnostics golden suite: every file under testdata/diag is a
// syntactically valid Go program that violates the restricted-Go
// contract. Expected rejections are pinned with trailing comments of
// the form
//
//	// want COL "exact message" rule-id
//
// on the offending line. The compile must produce exactly the
// diagnostics the file declares — same line, column, message, and
// contract rule — so error quality regressions fail loudly.

var wantRe = regexp.MustCompile(`// want (\d+) "((?:[^"\\]|\\.)*)" ([a-z-]+)`)

type wantDiag struct {
	line, col int
	msg, rule string
}

func parseWants(t *testing.T, src []byte) []wantDiag {
	t.Helper()
	var wants []wantDiag
	sc := bufio.NewScanner(bytes.NewReader(src))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		for _, m := range wantRe.FindAllStringSubmatch(sc.Text(), -1) {
			var col int
			fmt.Sscanf(m[1], "%d", &col)
			msg, err := unquoteWant(m[2])
			if err != nil {
				t.Fatalf("line %d: bad want message %q: %v", line, m[2], err)
			}
			wants = append(wants, wantDiag{line: line, col: col, msg: msg, rule: m[3]})
		}
	}
	return wants
}

func unquoteWant(s string) (string, error) {
	var b []byte
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' {
			if i+1 >= len(s) {
				return "", fmt.Errorf("trailing backslash")
			}
			i++
		}
		b = append(b, s[i])
	}
	return string(b), nil
}

func TestDiagnosticsGolden(t *testing.T) {
	files, err := filepath.Glob("testdata/diag/*.go")
	if err != nil || len(files) == 0 {
		t.Fatalf("no testdata/diag files: %v", err)
	}
	for _, file := range files {
		t.Run(filepath.Base(file), func(t *testing.T) {
			src, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			wants := parseWants(t, src)
			if len(wants) == 0 {
				t.Fatalf("%s declares no // want diagnostics", file)
			}
			_, cerr := Compile(filepath.Base(file), src, Options{})
			if cerr == nil {
				t.Fatalf("%s compiled; want %d diagnostics", file, len(wants))
			}
			diags, ok := cerr.(DiagList)
			if !ok {
				t.Fatalf("error is %T, want DiagList", cerr)
			}
			matched := make([]bool, len(wants))
			for _, d := range diags {
				found := false
				for i, w := range wants {
					if !matched[i] && d.Pos.Line == w.line && d.Pos.Column == w.col &&
						d.Msg == w.msg && d.Rule == w.rule {
						matched[i] = true
						found = true
						break
					}
				}
				if !found {
					t.Errorf("unexpected diagnostic: %v", d)
				}
			}
			for i, w := range wants {
				if !matched[i] {
					t.Errorf("missing diagnostic at %d:%d [%s] %q", w.line, w.col, w.rule, w.msg)
				}
			}
		})
	}
}
