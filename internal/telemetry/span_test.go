package telemetry

import (
	"testing"

	"hyperion/internal/sim"
)

// TestBeginEndMatchesSpan proves Begin/End is a pure respelling of
// Span: same event, same seq, same histogram fold.
func TestBeginEndMatchesSpan(t *testing.T) {
	direct := NewRecorder("direct")
	direct.Span("l", "n", 7, 10, 25)

	curried := NewRecorder("curried")
	sp := curried.Begin("l", "n", 7, 10)
	sp.End(25)

	if direct.Events() != 1 || curried.Events() != 1 {
		t.Fatalf("events = %d / %d, want 1 / 1", direct.Events(), curried.Events())
	}
	de, ce := direct.s.events[0], curried.s.events[0]
	if de != ce {
		t.Errorf("event mismatch: direct %+v, curried %+v", de, ce)
	}
	if len(curried.s.hists) != 1 || curried.s.hists[0].h.Count() != 1 {
		t.Errorf("End must fold the duration into the histogram")
	}
}

// TestBeginNilRecorder: spans begun while disarmed stay free — no
// event, no histogram, no retained state.
func TestBeginNilRecorder(t *testing.T) {
	var r *Recorder
	sp := r.Begin("l", "n", 1, 5)
	if sp != (ActiveSpan{}) {
		t.Errorf("Begin on nil recorder must return the zero ActiveSpan, got %+v", sp)
	}
	sp.End(9) // must not panic
}

// TestZeroActiveSpanEnd: the zero value is safely endable.
func TestZeroActiveSpanEnd(t *testing.T) {
	var sp ActiveSpan
	sp.End(3)
}

// TestBeginEndInterleaved: two open spans ending out of order keep
// record-order Seq (End order, not Begin order, defines Seq).
func TestBeginEndInterleaved(t *testing.T) {
	r := NewRecorder("p")
	a := r.Begin("l", "a", 1, 0)
	b := r.Begin("l", "b", 2, 5)
	b.End(8)
	a.End(9)
	if r.Events() != 2 {
		t.Fatalf("events = %d, want 2", r.Events())
	}
	if r.s.events[0].Name != "b" || r.s.events[0].Seq != 0 {
		t.Errorf("first recorded event = %+v, want span b with seq 0", r.s.events[0])
	}
	if r.s.events[1].Name != "a" || r.s.events[1].Seq != 1 {
		t.Errorf("second recorded event = %+v, want span a with seq 1", r.s.events[1])
	}
}

// TestBeginEndNoAlloc: the armed Begin/End pair appends to the event
// buffer but the ActiveSpan itself never escapes to the heap.
func TestBeginEndNoAlloc(t *testing.T) {
	r := NewRecorder("p")
	// Warm the event buffer and histogram so appends don't grow.
	for i := 0; i < 64; i++ {
		r.Span("l", "n", 0, 0, 1)
	}
	allocs := testing.AllocsPerRun(100, func() {
		sp := r.Begin("l", "n", 3, sim.Time(10))
		sp.End(sim.Time(20))
	})
	// Amortized slice growth of the shared event buffer can cost a
	// fraction of an alloc per run; the span value itself must be free.
	if allocs >= 1 {
		t.Errorf("Begin/End allocates %.1f per op; ActiveSpan must stay on the stack", allocs)
	}
}
