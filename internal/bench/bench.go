// Package bench implements the paper-reproduction harness: one function
// per experiment in DESIGN.md's index (E1–E14), each regenerating the
// corresponding table or figure of the HotOS'23 paper as printable rows.
// cmd/benchctl runs them from the command line; the repository-root
// bench_test.go wraps them as testing.B benchmarks; EXPERIMENTS.md
// records their output against the paper's claims.
package bench

import (
	"fmt"

	"hyperion/internal/sim"
)

// Result is one experiment's rendered output. SimTime and Steps
// summarize the simulation work behind it: the furthest virtual clock
// and the total events executed across every Engine the experiment ran
// (zero for purely analytic experiments like E1).
type Result struct {
	ID      string
	Title   string
	Table   sim.Table
	Notes   []string
	SimTime sim.Time
	Steps   uint64
}

// observe folds an engine's clock and step count into the result; an
// experiment calls it once per Engine it drove, before returning.
func (r *Result) observe(engines ...*sim.Engine) {
	for _, e := range engines {
		r.Steps += e.Steps()
		if e.Now() > r.SimTime {
			r.SimTime = e.Now()
		}
	}
}

// String renders the result.
func (r Result) String() string {
	out := fmt.Sprintf("== %s: %s ==\n%s", r.ID, r.Title, r.Table.String())
	for _, n := range r.Notes {
		out += "   " + n + "\n"
	}
	return out
}

// DefaultSeed is the seed behind Run() and every golden table: all
// EXPERIMENTS.md output and the pinned table hashes are the
// DefaultSeed universe. Other seeds exist for the metamorphic
// determinism sweep (same seed → byte-identical tables, twice over).
const DefaultSeed uint64 = 1

// Experiment couples an id with its seeded runner.
type Experiment struct {
	ID        string
	Name      string
	RunSeeded func(seed uint64) Result
}

// Run executes the experiment at DefaultSeed — the golden universe.
func (e Experiment) Run() Result { return e.RunSeeded(DefaultSeed) }

// All returns every experiment in order.
func All() []Experiment {
	return []Experiment{
		{"E1", "table1", Table1},
		{"E2", "fig2", Fig2},
		{"E3", "energy", Energy},
		{"E4", "reconfig", Reconfig},
		{"E5", "jitter", Predictability},
		{"E6", "segtable", SegmentVsPage},
		{"E7", "chase", PointerChase},
		{"E8", "fail2ban", Fail2ban},
		{"E9", "lb", LoadBalancer},
		{"E10", "ebpf", EBPFPipeline},
		{"E11", "corfu", Corfu},
		{"E12", "scan", ColumnarScan},
		{"E13", "kv", KVStore},
		{"E14", "nvmeof", NVMeoF},
		// Extensions beyond the paper's own artifacts.
		{"X1", "cluster", ClusterScaleOut},
		{"E16", "chaos", Chaos},
	}
}

// ByName finds an experiment by id or name.
func ByName(s string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == s || e.Name == s {
			return e, true
		}
	}
	return Experiment{}, false
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func itoa(n int64) string { return fmt.Sprintf("%d", n) }
