package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// ReadJSON loads a previously written BENCH_*.json report.
func ReadJSON(path string) (Report, error) {
	var rep Report
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, fmt.Errorf("bench: parsing %s: %w", path, err)
	}
	return rep, nil
}

// CompareRow is one experiment's old-vs-new delta.
type CompareRow struct {
	ID         string
	OldWallMS  float64
	NewWallMS  float64
	OldAllocs  int64
	NewAllocs  int64
	OldHash    string
	NewHash    string
	HashMatch  bool
	OldMissing bool // experiment absent from the old report
	NewMissing bool // experiment absent from the new report
}

// Comparison is a full old-vs-new report diff.
type Comparison struct {
	Rows           []CompareRow
	OldTotalWallMS float64
	NewTotalWallMS float64
	HashMismatches int
}

// Compare diffs two reports experiment by experiment, keyed on ID, in
// the new report's order; experiments present only in the old report
// are appended at the end. A row with either side missing never counts
// as a hash mismatch — only a present-on-both-sides hash difference
// does, since that is what signals a semantics change.
func Compare(old, cur Report) Comparison {
	cmp := Comparison{
		OldTotalWallMS: old.TotalWallMS,
		NewTotalWallMS: cur.TotalWallMS,
	}
	oldByID := make(map[string]Record, len(old.Results))
	for _, r := range old.Results {
		oldByID[r.ID] = r
	}
	seen := make(map[string]bool, len(cur.Results))
	for _, n := range cur.Results {
		seen[n.ID] = true
		row := CompareRow{
			ID:        n.ID,
			NewWallMS: n.WallMS,
			NewAllocs: n.Allocs,
			NewHash:   n.TableSHA256,
		}
		if o, ok := oldByID[n.ID]; ok {
			row.OldWallMS = o.WallMS
			row.OldAllocs = o.Allocs
			row.OldHash = o.TableSHA256
			row.HashMatch = o.TableSHA256 == n.TableSHA256
			if !row.HashMatch {
				cmp.HashMismatches++
			}
		} else {
			row.OldMissing = true
		}
		cmp.Rows = append(cmp.Rows, row)
	}
	for _, o := range old.Results {
		if !seen[o.ID] {
			cmp.Rows = append(cmp.Rows, CompareRow{
				ID:         o.ID,
				OldWallMS:  o.WallMS,
				OldAllocs:  o.Allocs,
				OldHash:    o.TableSHA256,
				NewMissing: true,
			})
		}
	}
	return cmp
}

// String renders the delta table.
func (c Comparison) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-5s %10s %10s %8s  %12s %12s %8s  %s\n",
		"exp", "old ms", "new ms", "wall", "old allocs", "new allocs", "allocs", "hash")
	for _, r := range c.Rows {
		switch {
		case r.OldMissing:
			fmt.Fprintf(&b, "%-5s %10s %10.1f %8s  %12s %12d %8s  %s\n",
				r.ID, "-", r.NewWallMS, "new", "-", r.NewAllocs, "new", "new")
		case r.NewMissing:
			fmt.Fprintf(&b, "%-5s %10.1f %10s %8s  %12d %12s %8s  %s\n",
				r.ID, r.OldWallMS, "-", "gone", r.OldAllocs, "-", "gone", "gone")
		default:
			hash := "ok"
			if !r.HashMatch {
				hash = "MISMATCH"
			}
			fmt.Fprintf(&b, "%-5s %10.1f %10.1f %8s  %12d %12d %8s  %s\n",
				r.ID, r.OldWallMS, r.NewWallMS, ratio(r.OldWallMS, r.NewWallMS),
				r.OldAllocs, r.NewAllocs, ratio(float64(r.OldAllocs), float64(r.NewAllocs)), hash)
		}
	}
	fmt.Fprintf(&b, "%-5s %10.1f %10.1f %8s\n",
		"total", c.OldTotalWallMS, c.NewTotalWallMS, ratio(c.OldTotalWallMS, c.NewTotalWallMS))
	if c.HashMismatches > 0 {
		fmt.Fprintf(&b, "HASH MISMATCH on %d experiment(s): output tables changed\n", c.HashMismatches)
	}
	return b.String()
}

// ratio formats new/old as a speedup-style factor ("0.42x" = new costs
// 42% of old). Alloc counts of -1 (unattributed parallel runs) and
// zero baselines render as "-".
func ratio(old, new float64) string {
	if old <= 0 || new < 0 {
		return "-"
	}
	return fmt.Sprintf("%.2fx", new/old)
}
