// KV store example: a network-attached KV-SSD served entirely by the
// DPU (Figure 2's "KV-SSD" box), exercised by a remote YCSB client over
// the RDMA-style transport. Shows the C2 pure-Hyperion workload class:
// the request never touches a CPU — transport, index walk, value-log
// access, and reply all happen on the card.
package main

import (
	"fmt"
	"log"

	"hyperion/internal/core"
	"hyperion/internal/netsim"
	"hyperion/internal/rpc"
	"hyperion/internal/seg"
	"hyperion/internal/sim"
	"hyperion/internal/storage/kvssd"
	"hyperion/internal/trace"
	"hyperion/internal/transport"
)

func main() {
	eng := sim.NewEngine(7)
	net := netsim.New(eng, netsim.DefaultConfig())
	dpu, _, err := core.Boot(eng, net, core.DefaultConfig("kv-dpu"))
	if err != nil {
		log.Fatal(err)
	}

	// The store: LSM-indexed KV over the segment store (durable).
	kv, err := kvssd.Create(dpu.View, seg.OID(0x4B, 0), kvssd.BackendLSM, true)
	if err != nil {
		log.Fatal(err)
	}

	// Service: two RPC methods, run-to-completion, with storage cost
	// charged back into simulated time.
	dpu.CtrlSrv.Handle("kv.get", func(arg any, respond func(any, int, error)) {
		val, ok, err := kv.Get(arg.([]byte))
		dpu.View.Complete(eng, "kv.get", func() {
			if err != nil {
				respond(nil, 64, err)
				return
			}
			if !ok {
				respond(nil, 64, nil)
				return
			}
			respond(val, len(val)+64, nil)
		})
	})
	dpu.CtrlSrv.Handle("kv.put", func(arg any, respond func(any, int, error)) {
		pair := arg.([2][]byte)
		err := kv.Put(pair[0], pair[1])
		dpu.View.Complete(eng, "kv.put", func() { respond(true, 64, err) })
	})

	// Client on another host.
	cn, err := net.Attach("ycsb-client")
	if err != nil {
		log.Fatal(err)
	}
	cli := rpc.NewClient(eng, transport.New(eng, transport.RDMA, cn))
	cli.Timeout = sim.Duration(sim.Second)

	// Load phase.
	const keys = 5000
	g := trace.NewKVGen(1, keys, trace.YCSBB, 256)
	for _, k := range g.LoadKeys() {
		if err := kv.Put(trace.Key(k), g.Value(k)); err != nil {
			log.Fatal(err)
		}
	}
	dpu.View.TakeCost()
	fmt.Printf("loaded %d keys (%d bytes of value log)\n", keys, kv.LogBytes())

	// Run phase: YCSB-B (95% reads), closed loop.
	const ops = 3000
	var lat sim.LatencyRecorder
	misses := 0
	for i := 0; i < ops; i++ {
		op := g.Next()
		t0 := eng.Now()
		if op.Kind == 'r' {
			cli.Call(dpu.ControlAddr(), "kv.get", op.Key, 64, func(val any, err error) {
				if err != nil {
					log.Fatal(err)
				}
				if val == nil {
					misses++
				}
				lat.Record(eng.Now().Sub(t0))
			})
		} else {
			cli.Call(dpu.ControlAddr(), "kv.put", [2][]byte{op.Key, op.Value}, 320, func(val any, err error) {
				if err != nil {
					log.Fatal(err)
				}
				lat.Record(eng.Now().Sub(t0))
			})
		}
		eng.Run()
	}
	fmt.Printf("ycsb-b over the wire: %s\n", lat.Summary())
	fmt.Printf("misses=%d puts=%d gets=%d collisions=%d\n", misses, kv.Puts, kv.Gets, kv.Collisions)
}
