// Package fail2ban is the paper's first pure-Hyperion workload (§2.4): a
// high-volume network middleware that filters brute-force attackers at
// line rate. The per-packet logic is a verified eBPF program compiled
// into a fabric slot: it checks a ban map, counts authentication
// failures per source, and bans sources that cross the threshold. Ban
// events and counters persist to the DPU's attached SSDs through the
// segment store — the traffic-proportional state that motivates pairing
// the middlebox with storage.
package fail2ban

import (
	"encoding/binary"
	"fmt"

	"hyperion/internal/core"
	"hyperion/internal/ebpf"
	"hyperion/internal/ehdl"
	"hyperion/internal/seg"
	"hyperion/internal/trace"
)

// Verdicts returned by the packet program.
const (
	VerdictPass   = 0
	VerdictDrop   = 1
	VerdictBanned = 2 // this packet triggered a new ban
)

// Filter is a deployed fail2ban instance.
type Filter struct {
	dpu       *core.DPU
	slot      int
	pipe      *ehdl.Pipeline
	bans      *ebpf.HashMap
	fails     *ebpf.HashMap
	logID     seg.ObjectID
	logOff    int64
	Threshold int

	Passed, Dropped, Banned int64
}

// logEntrySize is one persisted ban record: srcIP(4) pad(4) time(8).
const logEntrySize = 16

// logCapacity bounds the persistent ban log object.
const logCapacity = 1 << 20

// Program returns the packet-filter eBPF source for a given ban
// threshold. Context layout is trace.Packet.Marshal: srcIP at 0,
// authFail at 18. Map 0 is bans (u32→u64), map 1 is failure counts
// (u32→u64).
func Program(threshold int) string {
	return fmt.Sprintf(`
	; r9 = ctx (saved across helper calls)
	mov r9, r1
	ldxw r6, [r9+0]       ; src ip
	ldxb r7, [r9+18]      ; auth failure flag
	stxw [r10-4], r6      ; key = src ip
	mov r1, 0             ; bans map
	mov r2, r10
	sub r2, 4
	call 1
	jeq r0, 0, notbanned
	mov r0, %d            ; already banned: drop
	exit
notbanned:
	jeq r7, 0, pass       ; clean packet
	mov r1, 1             ; failure-count map
	mov r2, r10
	sub r2, 4
	call 1
	jeq r0, 0, first
	ldxdw r3, [r0+0]
	add r3, 1
	stxdw [r0+0], r3      ; increment in place
	jge r3, %d, ban
	ja pass
first:
	stdw [r10-16], 1      ; first failure
	mov r1, 1
	mov r2, r10
	sub r2, 4
	mov r3, r10
	sub r3, 16
	call 2
	ja pass
ban:
	stdw [r10-16], 1
	mov r1, 0             ; bans map
	mov r2, r10
	sub r2, 4
	mov r3, r10
	sub r3, 16
	call 2
	mov r0, %d            ; newly banned
	exit
pass:
	mov r0, %d
	exit
`, VerdictDrop, threshold, VerdictBanned, VerdictPass)
}

// NewPipeline compiles a fresh, self-contained filter instance — the
// gofront-compiled program plus its own ban and failure-count maps —
// into an eHDL pipeline authorized by authTag. Each call returns
// independent state, so the tenant plane can run one filter instance
// per tenant in separate slots. The returned maps are ids 0 (bans)
// and 1 (failure counts).
func NewPipeline(name, authTag string, threshold int) (*ehdl.Pipeline, *ebpf.HashMap, *ebpf.HashMap, error) {
	maps := &ebpf.MapSet{}
	bans := ebpf.NewHashMap(4, 8, 1<<16)
	fails := ebpf.NewHashMap(4, 8, 1<<16)
	maps.Add(bans)  // id 0
	maps.Add(fails) // id 1

	prog, err := CompileFilter(threshold)
	if err != nil {
		return nil, nil, nil, err
	}
	vcfg := ebpf.DefaultVerifierConfig(maps)
	vcfg.CtxSize = ctxBytes
	pipe, err := ehdl.Compile(prog, ehdl.Options{
		Name:     name,
		AuthTag:  authTag,
		Optimize: true,
		CtxBytes: ctxBytes,
		Verifier: vcfg,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	return pipe, bans, fails, nil
}

// Deploy compiles the filter, loads it into a fabric slot, and
// allocates the persistent ban log. done fires when the slot is active.
func Deploy(d *core.DPU, slot, threshold int, done func()) (*Filter, error) {
	pipe, bans, fails, err := NewPipeline("fail2ban", d.Cfg.AuthTag, threshold)
	if err != nil {
		return nil, err
	}
	f := &Filter{dpu: d, slot: slot, pipe: pipe, bans: bans, fails: fails,
		Threshold: threshold, logID: seg.OID(0xFA12, 1)}
	if _, err := d.Store.Alloc(f.logID, logCapacity, true, seg.HintAuto); err != nil {
		return nil, err
	}
	if err := d.LoadAccelerator(slot, pipe.Bitstream(), done); err != nil {
		return nil, err
	}
	return f, nil
}

// Process runs one packet through the slot. verdict receives the
// program's decision after the pipeline latency (plus log persistence
// for new bans).
func (f *Filter) Process(p trace.Packet, verdict func(v int)) error {
	ctx := p.Marshal()
	return f.dpu.Submit(f.slot, ctx, func(out any) {
		res, ok := out.(*ehdl.Result)
		if !ok || res.Err != nil {
			verdict(VerdictDrop)
			return
		}
		v := int(res.Ret)
		switch v {
		case VerdictPass:
			f.Passed++
		case VerdictDrop:
			f.Dropped++
		case VerdictBanned:
			f.Dropped++
			f.Banned++
			f.persistBan(p.SrcIP)
		}
		verdict(v)
	})
}

// persistBan appends a ban record to the durable log.
func (f *Filter) persistBan(src uint32) {
	if f.logOff+logEntrySize > logCapacity {
		return // log full; real deployment would rotate
	}
	rec := make([]byte, logEntrySize)
	binary.LittleEndian.PutUint32(rec, src)
	binary.LittleEndian.PutUint64(rec[8:], uint64(f.dpu.Eng.Now()))
	off := f.logOff
	f.logOff += logEntrySize
	f.dpu.Store.Write(f.logID, off, rec, nil)
}

// BannedSources reads the persistent ban log back (control-plane use).
func (f *Filter) BannedSources(cb func([]uint32, error)) {
	n := f.logOff / logEntrySize
	if n == 0 {
		cb(nil, nil)
		return
	}
	f.dpu.Store.Read(f.logID, 0, f.logOff, func(data []byte, err error) {
		if err != nil {
			cb(nil, err)
			return
		}
		out := make([]uint32, 0, n)
		for i := int64(0); i < n; i++ {
			out = append(out, binary.LittleEndian.Uint32(data[i*logEntrySize:]))
		}
		cb(out, nil)
	})
}

// IsBanned checks the ban map directly (control plane).
func (f *Filter) IsBanned(src uint32) bool {
	var key [4]byte
	binary.LittleEndian.PutUint32(key[:], src)
	_, ok := f.bans.Lookup(key[:])
	return ok
}

// Pipeline exposes compile statistics.
func (f *Filter) Pipeline() *ehdl.Pipeline { return f.pipe }
