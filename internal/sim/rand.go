package sim

import "math"

// Rand is a small, fast, deterministic PRNG (splitmix64-seeded
// xoshiro256**). Device models must draw all randomness from the engine's
// Rand so that simulations replay identically for a given seed.
type Rand struct {
	s [4]uint64
}

// NewRand returns a generator seeded from a single word via splitmix64.
func NewRand(seed uint64) *Rand {
	r := &Rand{}
	x := seed
	for i := range r.s {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a non-negative int64.
func (r *Rand) Int63() int64 { return int64(r.Uint64() >> 1) }

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Duration returns a uniform Duration in [lo, hi].
func (r *Rand) Duration(lo, hi Duration) Duration {
	if hi <= lo {
		return lo
	}
	return lo + Duration(r.Uint64()%uint64(hi-lo+1))
}

// Exp returns an exponentially distributed duration with the given mean.
// Used for arrival processes.
func (r *Rand) Exp(mean Duration) Duration {
	u := r.Float64()
	if u <= 0 {
		u = 1e-12
	}
	d := Duration(-math.Log(u) * float64(mean))
	if d < 0 {
		d = 0
	}
	return d
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Zipf generates Zipf-distributed ranks in [0, n) with skew theta
// (theta=0 is uniform; theta≈0.99 is the YCSB default). It uses the
// rejection-inversion-free method of Gray et al. used by YCSB.
type Zipf struct {
	r               *Rand
	n               uint64
	theta           float64
	alpha, zetan    float64
	eta, zeta2theta float64
}

// NewZipf returns a Zipf generator over [0, n).
func NewZipf(r *Rand, n uint64, theta float64) *Zipf {
	z := &Zipf{r: r, n: n, theta: theta}
	z.zetan = zetaStatic(n, theta)
	z.zeta2theta = zetaStatic(2, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - math.Pow(2.0/float64(n), 1-theta)) / (1 - z.zeta2theta/z.zetan)
	return z
}

func zetaStatic(n uint64, theta float64) float64 {
	sum := 0.0
	for i := uint64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next returns the next Zipf-distributed rank.
func (z *Zipf) Next() uint64 {
	u := z.r.Float64()
	uz := u * z.zetan
	if uz < 1.0 {
		return 0
	}
	if uz < 1.0+math.Pow(0.5, z.theta) {
		return 1
	}
	return uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
}
