package ehdl

import (
	"errors"
	"fmt"

	"hyperion/internal/ebpf"
)

// Optimize performs the "program warping" passes: in-block constant
// propagation, constant branch folding, dead-code elimination, and
// relayout. Fewer instructions mean shallower pipelines and smaller
// bitstreams, which is exactly where the hardware wins come from.
func Optimize(prog []ebpf.Instruction) ([]ebpf.Instruction, error) {
	g, err := buildGraph(prog)
	if err != nil {
		return nil, err
	}
	changed := true
	for iter := 0; changed && iter < 8; iter++ {
		changed = false
		if constProp(g) {
			changed = true
		}
		if foldBranches(g) {
			changed = true
		}
		if deadCode(g) {
			changed = true
		}
	}
	return g.emit()
}

// graph is a jump-resolved program: each node knows its explicit target
// index instead of a slot-relative offset.
type graph struct {
	ins     []ebpf.Instruction
	target  []int // resolved jump target (instruction index), -1 if n/a
	removed []bool
}

func buildGraph(prog []ebpf.Instruction) (*graph, error) {
	g := &graph{
		ins:     append([]ebpf.Instruction(nil), prog...),
		target:  make([]int, len(prog)),
		removed: make([]bool, len(prog)),
	}
	for i, ins := range prog {
		g.target[i] = -1
		if isJump(ins) {
			t := targetOf(prog, i)
			if t < 0 {
				return nil, fmt.Errorf("ehdl: unresolvable jump at %d", i)
			}
			g.target[i] = t
		}
	}
	return g, nil
}

func isJump(ins ebpf.Instruction) bool {
	cls := ins.Class()
	if cls != ebpf.ClassJMP && cls != ebpf.ClassJMP32 {
		return false
	}
	op := ins.Op & 0xf0
	return op != ebpf.JmpExit && op != ebpf.JmpCall
}

func isCall(ins ebpf.Instruction) bool {
	cls := ins.Class()
	return (cls == ebpf.ClassJMP || cls == ebpf.ClassJMP32) && ins.Op&0xf0 == ebpf.JmpCall
}

func isExit(ins ebpf.Instruction) bool {
	cls := ins.Class()
	return (cls == ebpf.ClassJMP || cls == ebpf.ClassJMP32) && ins.Op&0xf0 == ebpf.JmpExit
}

// leaders marks basic-block entry points among live instructions.
func (g *graph) leaders() []bool {
	lead := make([]bool, len(g.ins))
	mark := func(i int) {
		if i >= 0 && i < len(lead) {
			lead[i] = true
		}
	}
	mark(g.next(0))
	for i, ins := range g.ins {
		if g.removed[i] {
			continue
		}
		if isJump(ins) {
			mark(g.target[i])
			mark(g.next(i + 1))
		}
	}
	return lead
}

// next returns the first live instruction at or after i.
func (g *graph) next(i int) int {
	for ; i < len(g.ins); i++ {
		if !g.removed[i] {
			return i
		}
	}
	return -1
}

// constProp propagates known register constants within basic blocks,
// rewriting register operands to immediates and folding ALU results.
func constProp(g *graph) bool {
	lead := g.leaders()
	changed := false
	var known [ebpf.NumRegs]bool
	var val [ebpf.NumRegs]int64
	reset := func() {
		for r := range known {
			known[r] = false
		}
	}
	reset()
	for i := 0; i < len(g.ins); i++ {
		if g.removed[i] {
			continue
		}
		if lead[i] {
			reset()
		}
		ins := &g.ins[i]
		cls := ins.Class()
		switch {
		case ins.IsLDDW():
			known[ins.Dst], val[ins.Dst] = true, ins.Imm64
		case cls == ebpf.ClassALU64 || cls == ebpf.ClassALU:
			if ins.IsEndian() {
				// The source bit selects byte order here, not an operand.
				known[ins.Dst] = false
				break
			}
			op := ins.Op & 0xf0
			// Rewrite register source to immediate when known & fits.
			if ins.Op&ebpf.SrcReg != 0 && known[ins.Src] && fitsImm32(val[ins.Src]) {
				ins.Op &^= ebpf.SrcReg
				ins.Imm = int32(val[ins.Src])
				ins.Src = 0
				changed = true
			}
			// Track the result.
			if ins.Op&ebpf.SrcReg != 0 {
				// Unknown source: result unknown.
				known[ins.Dst] = false
				break
			}
			src := int64(ins.Imm)
			if op == ebpf.ALUMov {
				known[ins.Dst], val[ins.Dst] = true, src
				if cls == ebpf.ClassALU {
					val[ins.Dst] = int64(uint32(src))
				}
				break
			}
			if !known[ins.Dst] {
				break
			}
			r, ok := foldALU(op, cls == ebpf.ClassALU, val[ins.Dst], src)
			if ok {
				val[ins.Dst] = r
				// Replace the whole computation with a mov of the result
				// when it fits (strength reduction to a constant).
				if fitsImm32(r) && op != ebpf.ALUMov {
					*ins = ebpf.Instruction{Op: cls | ebpf.ALUMov, Dst: ins.Dst, Imm: int32(r)}
					changed = true
				}
			} else {
				known[ins.Dst] = false
			}
		case cls == ebpf.ClassLDX:
			known[ins.Dst] = false
		case isCall(*ins):
			for _, r := range []uint8{ebpf.R0, ebpf.R1, ebpf.R2, ebpf.R3, ebpf.R4, ebpf.R5} {
				known[r] = false
			}
		case isJump(*ins):
			// Rewrite register comparison operand when known.
			if ins.Op&ebpf.SrcReg != 0 && known[ins.Src] && fitsImm32(val[ins.Src]) {
				ins.Op &^= ebpf.SrcReg
				ins.Imm = int32(val[ins.Src])
				ins.Src = 0
				changed = true
			}
		}
	}
	return changed
}

func fitsImm32(v int64) bool { return v >= -(1<<31) && v < 1<<31 }

func foldALU(op uint8, is32 bool, a, b int64) (int64, bool) {
	if is32 {
		a, b = int64(uint32(a)), int64(uint32(b))
	}
	var r int64
	switch op {
	case ebpf.ALUAdd:
		r = a + b
	case ebpf.ALUSub:
		r = a - b
	case ebpf.ALUMul:
		r = a * b
	case ebpf.ALUDiv:
		if b == 0 {
			r = 0
		} else {
			r = int64(uint64(a) / uint64(b))
		}
	case ebpf.ALUMod:
		if b == 0 {
			r = a
		} else {
			r = int64(uint64(a) % uint64(b))
		}
	case ebpf.ALUAnd:
		r = a & b
	case ebpf.ALUOr:
		r = a | b
	case ebpf.ALUXor:
		r = a ^ b
	case ebpf.ALULsh:
		r = int64(uint64(a) << (uint64(b) & 63))
	case ebpf.ALURsh:
		r = int64(uint64(a) >> (uint64(b) & 63))
	case ebpf.ALUArsh:
		r = a >> (uint64(b) & 63)
	default:
		return 0, false
	}
	if is32 {
		r = int64(uint32(r))
	}
	return r, true
}

// foldBranches turns always/never-taken constant comparisons into
// unconditional jumps or removals. It only fires when the comparison's
// dst register constant is block-locally known (tracked by a fresh
// constProp-style sweep).
func foldBranches(g *graph) bool {
	lead := g.leaders()
	changed := false
	var known [ebpf.NumRegs]bool
	var val [ebpf.NumRegs]int64
	reset := func() {
		for r := range known {
			known[r] = false
		}
	}
	reset()
	for i := 0; i < len(g.ins); i++ {
		if g.removed[i] {
			continue
		}
		if lead[i] {
			reset()
		}
		ins := &g.ins[i]
		cls := ins.Class()
		switch {
		case ins.IsLDDW():
			known[ins.Dst], val[ins.Dst] = true, ins.Imm64
		case cls == ebpf.ClassALU64 || cls == ebpf.ClassALU:
			if ins.IsEndian() {
				known[ins.Dst] = false
				break
			}
			op := ins.Op & 0xf0
			if op == ebpf.ALUMov && ins.Op&ebpf.SrcReg == 0 {
				known[ins.Dst], val[ins.Dst] = true, int64(ins.Imm)
				if cls == ebpf.ClassALU {
					val[ins.Dst] = int64(uint32(int64(ins.Imm)))
				}
			} else {
				known[ins.Dst] = false
			}
		case cls == ebpf.ClassLDX:
			known[ins.Dst] = false
		case isCall(*ins):
			for _, r := range []uint8{ebpf.R0, ebpf.R1, ebpf.R2, ebpf.R3, ebpf.R4, ebpf.R5} {
				known[r] = false
			}
		case isJump(*ins) && ins.Op&0xf0 != ebpf.JmpA && ins.Op&ebpf.SrcReg == 0:
			if !known[ins.Dst] {
				break
			}
			taken, ok := evalCond(ins.Op&0xf0, cls == ebpf.ClassJMP32, val[ins.Dst], int64(ins.Imm))
			if !ok {
				break
			}
			if taken {
				t := g.target[i]
				*ins = ebpf.Ja(0)
				g.target[i] = t
			} else {
				g.removed[i] = true
				g.target[i] = -1
			}
			changed = true
		}
	}
	if changed {
		g.sweepUnreachable()
	}
	return changed
}

func evalCond(op uint8, is32 bool, a, b int64) (bool, bool) {
	ua, ub := uint64(a), uint64(b)
	if is32 {
		ua, ub = uint64(uint32(ua)), uint64(uint32(ub))
		a, b = int64(int32(uint32(a))), int64(int32(uint32(b)))
	}
	switch op {
	case ebpf.JmpEq:
		return ua == ub, true
	case ebpf.JmpNe:
		return ua != ub, true
	case ebpf.JmpGt:
		return ua > ub, true
	case ebpf.JmpGe:
		return ua >= ub, true
	case ebpf.JmpLt:
		return ua < ub, true
	case ebpf.JmpLe:
		return ua <= ub, true
	case ebpf.JmpSet:
		return ua&ub != 0, true
	case ebpf.JmpSGt:
		return a > b, true
	case ebpf.JmpSGe:
		return a >= b, true
	case ebpf.JmpSLt:
		return a < b, true
	case ebpf.JmpSLe:
		return a <= b, true
	}
	return false, false
}

// sweepUnreachable removes instructions no longer reachable from entry.
func (g *graph) sweepUnreachable() {
	reach := make([]bool, len(g.ins))
	var visit func(i int)
	visit = func(i int) {
		for i >= 0 && i < len(g.ins) {
			if g.removed[i] {
				i++
				continue
			}
			if reach[i] {
				return
			}
			reach[i] = true
			ins := g.ins[i]
			if isExit(ins) {
				return
			}
			if isJump(ins) {
				visit(g.target[i])
				if ins.Op&0xf0 == ebpf.JmpA {
					return
				}
			}
			i++
		}
	}
	visit(0)
	for i := range g.ins {
		if !g.removed[i] && !reach[i] {
			g.removed[i] = true
			g.target[i] = -1
		}
	}
}

// deadCode removes pure register writes whose results are never read.
// A single reverse pass suffices because verified programs only jump
// forward.
func deadCode(g *graph) bool {
	n := len(g.ins)
	liveIn := make([]uint16, n) // bitmask of live registers at entry of i
	liveOf := func(i int) uint16 {
		if i < 0 || i >= n {
			return 0
		}
		return liveIn[i]
	}
	changed := false
	for i := n - 1; i >= 0; i-- {
		if g.removed[i] {
			if i+1 < n {
				liveIn[i] = liveOf(g.next(i + 1))
			}
			continue
		}
		ins := g.ins[i]
		var out uint16
		cls := ins.Class()
		switch {
		case isExit(ins):
			out = 1 << ebpf.R0
		case isJump(ins):
			out = liveOf(g.target[i])
			if ins.Op&0xf0 != ebpf.JmpA {
				out |= liveOf(g.next(i + 1))
			}
		default:
			out = liveOf(g.next(i + 1))
		}
		in := out
		switch {
		case ins.IsLDDW():
			if out&(1<<ins.Dst) == 0 {
				g.removed[i] = true
				changed = true
				in = out
				break
			}
			in &^= 1 << ins.Dst
		case cls == ebpf.ClassALU64 || cls == ebpf.ClassALU:
			dstBit := uint16(1) << ins.Dst
			if out&dstBit == 0 {
				g.removed[i] = true
				changed = true
				break
			}
			op := ins.Op & 0xf0
			if op == ebpf.ALUMov {
				in &^= dstBit
			}
			if ins.Op&ebpf.SrcReg != 0 {
				in |= 1 << ins.Src
			}
			if op != ebpf.ALUMov {
				in |= dstBit
			}
		case cls == ebpf.ClassLDX:
			// Loads may fault; they are kept even if dst is dead — but a
			// verified program's loads cannot fault, so dead loads go too.
			if out&(1<<ins.Dst) == 0 {
				g.removed[i] = true
				changed = true
				break
			}
			in &^= 1 << ins.Dst
			in |= 1 << ins.Src
		case cls == ebpf.ClassSTX:
			in |= 1<<ins.Dst | 1<<ins.Src
		case cls == ebpf.ClassST:
			in |= 1 << ins.Dst
		case isCall(ins):
			in &^= 1 << ebpf.R0
			in |= 1<<ebpf.R1 | 1<<ebpf.R2 | 1<<ebpf.R3 | 1<<ebpf.R4 | 1<<ebpf.R5
		case isJump(ins):
			in |= 1 << ins.Dst
			if ins.Op&ebpf.SrcReg != 0 {
				in |= 1 << ins.Src
			}
		}
		liveIn[i] = in
	}
	return changed
}

// emit rebuilds a compact program with recomputed jump offsets.
func (g *graph) emit() ([]ebpf.Instruction, error) {
	newIdx := make([]int, len(g.ins))
	var out []ebpf.Instruction
	for i, ins := range g.ins {
		if g.removed[i] {
			newIdx[i] = -1
			continue
		}
		newIdx[i] = len(out)
		out = append(out, ins)
	}
	// Redirect targets that pointed at removed instructions to the next
	// live one.
	resolve := func(old int) int {
		for old < len(g.ins) && g.removed[old] {
			old++
		}
		if old >= len(g.ins) {
			return -1
		}
		return newIdx[old]
	}
	// Compute slot positions of the new program.
	slotOf := make([]int, len(out)+1)
	for i, ins := range out {
		slotOf[i+1] = slotOf[i] + 1
		if ins.IsLDDW() {
			slotOf[i+1]++
		}
	}
	oi := 0
	for i := range g.ins {
		if g.removed[i] {
			continue
		}
		if isJump(g.ins[i]) {
			t := resolve(g.target[i])
			if t < 0 {
				return nil, errors.New("ehdl: jump target eliminated")
			}
			off := slotOf[t] - (slotOf[oi] + 1)
			if off < -32768 || off > 32767 {
				return nil, errors.New("ehdl: relayout offset overflow")
			}
			out[oi].Off = int16(off)
		}
		oi++
	}
	if len(out) == 0 {
		return nil, errors.New("ehdl: optimizer removed entire program")
	}
	return out, nil
}
