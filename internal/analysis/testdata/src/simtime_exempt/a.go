// Package simtime_exempt is hyperlint golden-test input: exempt
// packages are outside the contract, so nothing here is diagnosed.
package simtime_exempt

import "hyperion/internal/sim"

func free(eng *sim.Engine) {
	eng.RunUntil(424242)
}
