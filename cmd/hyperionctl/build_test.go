package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const buildTestSrc = `package prog

//hyperion:map seen id=0 key=4 value=8 entries=256

type Pkt struct {
	Src uint32
}

//hyperion:helper 1
func mapLookup(m uint32, k *uint32) *uint64

func Filter(ctx *Pkt) uint64 {
	var key uint32
	key = ctx.Src
	p := mapLookup(0, &key)
	if p == nil {
		return 0
	}
	return 1
}
`

const buildTestBadSrc = `package prog

type Pkt struct {
	Src uint32
}

func Filter(ctx *Pkt) uint64 {
	s := make([]byte, 4)
	return uint64(s[0])
}
`

func writeTemp(t *testing.T, name, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCmdBuildSuccess(t *testing.T) {
	path := writeTemp(t, "filter.go", buildTestSrc)
	var stdout, stderr bytes.Buffer
	if code := cmdBuild([]string{path}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{
		"entry Filter: ctx 4 bytes",
		"map 0 seen: key 4B value 8B, 256 entries",
		"pipeline:",
		"call 1",
		"exit",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("stdout missing %q:\n%s", want, out)
		}
	}
}

func TestCmdBuildDiagnostics(t *testing.T) {
	path := writeTemp(t, "bad.go", buildTestBadSrc)
	var stdout, stderr bytes.Buffer
	if code := cmdBuild([]string{path}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	errOut := stderr.String()
	if !strings.Contains(errOut, "bad.go:8:7:") || !strings.Contains(errOut, "[no-heap]") {
		t.Errorf("stderr missing positioned no-heap diagnostic:\n%s", errOut)
	}
	if !strings.Contains(errOut, "rejected") {
		t.Errorf("stderr missing rejection summary:\n%s", errOut)
	}
	if stdout.Len() != 0 {
		t.Errorf("rejected build wrote to stdout:\n%s", stdout.String())
	}
}

func TestCmdBuildUsage(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := cmdBuild(nil, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "usage:") {
		t.Errorf("stderr missing usage line:\n%s", stderr.String())
	}
	if code := cmdBuild([]string{"nosuch.go"}, &stdout, &stderr); code != 1 {
		t.Fatalf("missing file: exit %d, want 1", code)
	}
}
