// Package chase implements §2.4's latency-sensitive pointer-chasing
// workload over a disaggregated B+ tree, both ways the paper contrasts:
// client-side traversal that pays one network round trip per tree level,
// and DPU-side traversal offloaded as a verified per-hop eBPF program
// (XRP-style), which costs a single round trip regardless of depth.
package chase

import (
	"encoding/binary"
	"errors"
	"fmt"

	"hyperion/internal/core"
	"hyperion/internal/ebpf"
	"hyperion/internal/ehdl"
	"hyperion/internal/netsim"
	"hyperion/internal/rpc"
	"hyperion/internal/seg"
	"hyperion/internal/storage/bptree"
	"hyperion/internal/telemetry"
)

// RPC method names.
const (
	MethodMeta = "chase.meta"
	MethodNode = "chase.node"
	MethodGet  = "chase.get"
)

// Meta describes the served tree to clients.
type Meta struct {
	RootHi, RootLo uint64
	Height         int
}

// NodeArgs requests one raw node page.
type NodeArgs struct {
	Hi, Lo uint64
}

// GetArgs requests a full offloaded lookup.
type GetArgs struct {
	Key uint64
}

// GetReply is the offloaded lookup result.
type GetReply struct {
	Found bool
	Value uint64
	Hops  int
}

// maxDepth bounds the runtime resubmission loop.
const maxDepth = 16

// Errors.
var (
	ErrCorrupt = errors.New("chase: per-hop program reported corrupt node")
	ErrTooDeep = errors.New("chase: traversal exceeded depth bound")
)

// Service serves a B+ tree over RPC from a DPU.
type Service struct {
	dpu  *core.DPU
	tree *bptree.Tree
	pipe *ehdl.Pipeline
	// Per-service scratch for the offloaded loop: node page reads and
	// the per-hop program context (handlers run to completion, so one of
	// each suffices).
	pageBuf []byte
	ctx     []byte

	OffloadGets, NodeFetches int64
}

// NewService registers the chase methods on the DPU's control server
// (data-plane RPC uses the same machinery). The per-hop program is
// verified and compiled at deploy time.
func NewService(d *core.DPU, srv *rpc.Server, tree *bptree.Tree) (*Service, error) {
	prog, err := CompileStep()
	if err != nil {
		return nil, err
	}
	vcfg := ebpf.DefaultVerifierConfig(nil)
	vcfg.CtxSize = CtxBytes
	pipe, err := ehdl.Compile(prog, ehdl.Options{
		Name:     "chase-step",
		AuthTag:  d.Cfg.AuthTag,
		Optimize: true,
		CtxBytes: CtxBytes,
		Verifier: vcfg,
	})
	if err != nil {
		return nil, fmt.Errorf("chase: compiling step program: %w", err)
	}
	s := &Service{dpu: d, tree: tree, pipe: pipe}

	srv.Handle(MethodMeta, func(arg any, respond func(any, int, error)) {
		root := tree.Root()
		respond(Meta{RootHi: root.Hi, RootLo: root.Lo, Height: tree.Height()}, 64, nil)
	})
	srv.Handle(MethodNode, func(arg any, respond func(any, int, error)) {
		na, ok := arg.(NodeArgs)
		if !ok {
			respond(nil, 0, fmt.Errorf("chase: bad node args %T", arg))
			return
		}
		s.NodeFetches++
		page, err := d.View.ReadAt(seg.ObjectID{Hi: na.Hi, Lo: na.Lo}, 0, bptree.NodeBytes)
		if err != nil {
			respond(nil, 0, err)
			return
		}
		// The storage cost accrued on the view becomes response delay.
		cost := d.View.TakeCost()
		d.Eng.After(cost, "chase.node", func() {
			respond(page, len(page)+64, nil)
		})
	})
	srv.Handle(MethodGet, func(arg any, respond func(any, int, error)) {
		ga, ok := arg.(GetArgs)
		if !ok {
			respond(nil, 0, fmt.Errorf("chase: bad get args %T", arg))
			return
		}
		s.OffloadGets++
		reply, err := s.offloadedGet(ga.Key)
		cost := d.View.TakeCost()
		d.Eng.After(cost, "chase.get", func() {
			if err != nil {
				respond(nil, 0, err)
				return
			}
			respond(reply, 64, nil)
		})
	})
	return s, nil
}

// offloadedGet runs the XRP-style loop: fetch node, run the verified
// per-hop program, follow its verdict. Storage cost accrues on the
// DPU's view; the per-hop pipeline latency is charged explicitly.
func (s *Service) offloadedGet(key uint64) (GetReply, error) {
	if s.ctx == nil {
		s.ctx = make([]byte, CtxBytes)
	}
	ctx := s.ctx
	cur := s.tree.Root()
	for hop := 1; hop <= maxDepth; hop++ {
		page, err := s.dpu.View.ReadAtBuf(cur, 0, bptree.NodeBytes, s.pageBuf)
		if err != nil {
			return GetReply{}, err
		}
		s.pageBuf = page
		binary.LittleEndian.PutUint64(ctx[CtxKey:], key)
		// The key and the full node image are rewritten below; the
		// program-written scratch fields in between must read as zero
		// each hop, exactly as a fresh context would.
		clear(ctx[CtxAction:CtxNode])
		copy(ctx[CtxNode:], page)
		res := s.pipe.Exec(ctx)
		if res.Err != nil {
			return GetReply{}, res.Err
		}
		// Charge the pipeline's hardware latency per hop.
		s.dpu.View.Charge(s.dpu.Fabric.Cycles(int64(s.pipe.Stats.Depth)))
		switch res.Ret {
		case ActFound:
			return GetReply{Found: true, Value: binary.LittleEndian.Uint64(ctx[CtxValue:]), Hops: hop}, nil
		case ActNotFound:
			return GetReply{Found: false, Hops: hop}, nil
		case ActDescend:
			cur = seg.ObjectID{
				Hi: binary.LittleEndian.Uint64(ctx[CtxNextHi:]),
				Lo: binary.LittleEndian.Uint64(ctx[CtxNextLo:]),
			}
		default:
			return GetReply{}, ErrCorrupt
		}
	}
	return GetReply{}, ErrTooDeep
}

// Pipeline exposes the compiled per-hop program (stats for E10).
func (s *Service) Pipeline() *ehdl.Pipeline { return s.pipe }

// Client drives traversals from a remote host.
type Client struct {
	c    *rpc.Client
	addr netsim.Addr

	// Span is the trace context stamped on subsequent lookups (0 =
	// untagged). Harnesses set it per operation when tracing is armed.
	Span telemetry.RequestID

	RTTs int64 // network round trips issued
}

// NewClient builds a chase client.
func NewClient(c *rpc.Client, addr netsim.Addr) *Client {
	return &Client{c: c, addr: addr}
}

// OffloadGet performs the one-round-trip offloaded lookup.
func (cl *Client) OffloadGet(key uint64, cb func(GetReply, error)) {
	cl.RTTs++
	cl.c.CallSpan(cl.addr, MethodGet, GetArgs{Key: key}, 64, cl.Span, func(val any, err error) {
		if err != nil {
			cb(GetReply{}, err)
			return
		}
		cb(val.(GetReply), nil)
	})
}

// ClientSideGet walks the tree from the client, paying one round trip
// per level: fetch meta (cached), then fetch and parse each node.
func (cl *Client) ClientSideGet(key uint64, cb func(GetReply, error)) {
	cl.RTTs++
	cl.c.CallSpan(cl.addr, MethodMeta, nil, 64, cl.Span, func(val any, err error) {
		if err != nil {
			cb(GetReply{}, err)
			return
		}
		meta := val.(Meta)
		cl.walk(seg.ObjectID{Hi: meta.RootHi, Lo: meta.RootLo}, key, 1, cb)
	})
}

func (cl *Client) walk(cur seg.ObjectID, key uint64, hop int, cb func(GetReply, error)) {
	if hop > maxDepth {
		cb(GetReply{}, ErrTooDeep)
		return
	}
	cl.RTTs++
	cl.c.CallSpan(cl.addr, MethodNode, NodeArgs{Hi: cur.Hi, Lo: cur.Lo}, 64, cl.Span, func(val any, err error) {
		if err != nil {
			cb(GetReply{}, err)
			return
		}
		page := val.([]byte)
		kind, keys, payload, _, derr := bptree.DecodeNode(page)
		if derr != nil {
			cb(GetReply{}, derr)
			return
		}
		i := searchKeys(keys, key)
		if kind == 1 { // leaf
			if i < len(keys) && keys[i] == key {
				cb(GetReply{Found: true, Value: payload[i], Hops: hop}, nil)
				return
			}
			cb(GetReply{Found: false, Hops: hop}, nil)
			return
		}
		if i < len(keys) && keys[i] == key {
			i++
		}
		next := seg.ObjectID{Hi: payload[i*2], Lo: payload[i*2+1]}
		cl.walk(next, key, hop+1, cb)
	})
}

func searchKeys(keys []uint64, k uint64) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if keys[mid] < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
