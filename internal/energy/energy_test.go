package energy

import (
	"testing"

	"hyperion/internal/sim"
)

func TestPaperRatios(t *testing.T) {
	h, s := Hyperion(), Server1U()
	if r := VolumeRatio(h, s); r < 5 || r > 10 {
		t.Fatalf("volume ratio %.1f outside the paper's 5-10×", r)
	}
	if r := TDPRatio(h, s); r < 4 || r > 8 {
		t.Fatalf("TDP ratio %.1f outside the paper's 4-8×", r)
	}
}

func TestMeterIdleVsLoaded(t *testing.T) {
	h := Hyperion()
	idle := NewMeter(h, 0)
	j := idle.Joules(sim.Time(sim.Second))
	if j < h.IdleW*0.99 || j > h.IdleW*1.01 {
		t.Fatalf("idle second = %.1f J, want ≈ %.1f", j, h.IdleW)
	}
	full := NewMeter(h, 0)
	full.SetUtilization(0, 1.0)
	j = full.Joules(sim.Time(sim.Second))
	if j < h.MaxTDPW*0.99 || j > h.MaxTDPW*1.01 {
		t.Fatalf("loaded second = %.1f J, want ≈ %.1f", j, h.MaxTDPW)
	}
}

func TestMeterPiecewise(t *testing.T) {
	h := Platform{Name: "t", MaxTDPW: 100, IdleW: 0, VolumeL: 1}
	m := NewMeter(h, 0)
	m.SetUtilization(0, 0.5)
	m.SetUtilization(sim.Time(sim.Second), 1.0)
	j := m.Joules(sim.Time(2 * sim.Second))
	if j < 149 || j > 151 {
		t.Fatalf("piecewise = %.1f J, want 150", j)
	}
}

func TestJoulesPerOp(t *testing.T) {
	m := NewMeter(Hyperion(), 0)
	m.SetUtilization(0, 1.0)
	m.AddOps(1000)
	jpo := m.JoulesPerOp(sim.Time(sim.Second))
	if jpo < 0.2 || jpo > 0.25 {
		t.Fatalf("J/op = %v", jpo)
	}
	if m.Ops() != 1000 {
		t.Fatalf("ops = %d", m.Ops())
	}
	empty := NewMeter(Hyperion(), 0)
	if empty.JoulesPerOp(100) != 0 {
		t.Fatal("J/op with zero ops should be 0")
	}
}

func TestUtilizationClamped(t *testing.T) {
	m := NewMeter(Platform{MaxTDPW: 100, IdleW: 0}, 0)
	m.SetUtilization(0, 5.0)
	if j := m.Joules(sim.Time(sim.Second)); j > 101 {
		t.Fatalf("unclamped utilization: %.1f J", j)
	}
}
