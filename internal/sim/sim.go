// Package sim provides the discrete-event simulation kernel that underpins
// every hardware model in Hyperion: the virtual clock, the event queue, and
// deterministic pseudo-randomness.
//
// All device models (fabric, PCIe, NVMe, network) are state machines that
// schedule work on a shared *Engine. Virtual time is measured in
// picoseconds so that a 250 MHz fabric clock (4 ns) and a 100 Gbps link
// (80 ps per byte) can both be expressed exactly as integers.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Time is a point in virtual time, in picoseconds since simulation start.
type Time int64

// Duration is a span of virtual time in picoseconds.
type Duration int64

// Common durations.
const (
	Picosecond  Duration = 1
	Nanosecond           = 1000 * Picosecond
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Forever is a time later than any event the engine will ever reach.
const Forever Time = math.MaxInt64

func (t Time) String() string     { return fmtDur(int64(t)) }
func (d Duration) String() string { return fmtDur(int64(d)) }

func fmtDur(ps int64) string {
	switch {
	case ps >= int64(Second):
		return fmt.Sprintf("%.3fs", float64(ps)/float64(Second))
	case ps >= int64(Millisecond):
		return fmt.Sprintf("%.3fms", float64(ps)/float64(Millisecond))
	case ps >= int64(Microsecond):
		return fmt.Sprintf("%.3fus", float64(ps)/float64(Microsecond))
	case ps >= int64(Nanosecond):
		return fmt.Sprintf("%.3fns", float64(ps)/float64(Nanosecond))
	default:
		return fmt.Sprintf("%dps", ps)
	}
}

// Add returns t shifted by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration between two times.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds converts d to floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// FromStd converts a time.Duration to a sim.Duration.
func FromStd(d time.Duration) Duration { return Duration(d.Nanoseconds()) * Nanosecond }

// Event is a scheduled callback.
type Event struct {
	At   Time
	Do   func()
	Name string // for tracing; may be empty

	seq   uint64 // tie-breaker: FIFO among equal-time events
	index int    // heap index; -1 when not queued
	dead  bool   // cancelled
}

// eventQueue is a min-heap ordered by (At, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].At != q[j].At {
		return q[i].At < q[j].At
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Engine is the discrete-event simulator. It is not safe for concurrent
// use: device models run single-threaded inside the event loop, which is
// what makes simulations deterministic.
type Engine struct {
	now    Time
	queue  eventQueue
	seq    uint64
	nsteps uint64
	rng    *Rand
	trace  func(Time, string)
}

// NewEngine returns an engine at time zero with the given random seed.
func NewEngine(seed uint64) *Engine {
	return &Engine{rng: NewRand(seed)}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *Rand { return e.rng }

// Steps returns the number of events executed so far.
func (e *Engine) Steps() uint64 { return e.nsteps }

// SetTrace installs a tracing hook called for every named event executed.
func (e *Engine) SetTrace(fn func(Time, string)) { e.trace = fn }

// At schedules fn to run at absolute time t. Scheduling in the past
// (before Now) panics: it would break causality.
func (e *Engine) At(t Time, name string, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event %q at %v before now %v", name, t, e.now))
	}
	ev := &Event{At: t, Do: fn, Name: name, seq: e.seq}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Duration, name string, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v for event %q", d, name))
	}
	return e.At(e.now.Add(d), name, fn)
}

// Cancel removes a pending event. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.dead || ev.index < 0 {
		if ev != nil {
			ev.dead = true
		}
		return
	}
	ev.dead = true
	heap.Remove(&e.queue, ev.index)
}

// Step executes the single next event. It returns false when the queue is
// empty.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.dead {
			continue
		}
		e.now = ev.At
		e.nsteps++
		if e.trace != nil && ev.Name != "" {
			e.trace(e.now, ev.Name)
		}
		ev.Do()
		return true
	}
	return false
}

// Run executes events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with At <= deadline, then advances the clock to
// the deadline (if the queue emptied earlier or the next event is later).
func (e *Engine) RunUntil(deadline Time) {
	for len(e.queue) > 0 {
		next := e.peek()
		if next == nil {
			break
		}
		if next.At > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// RunFor executes events within the next d of virtual time.
func (e *Engine) RunFor(d Duration) { e.RunUntil(e.now.Add(d)) }

// RunWhile executes events until cond returns false or the queue empties.
// cond is checked before each event.
func (e *Engine) RunWhile(cond func() bool) {
	for cond() && e.Step() {
	}
}

func (e *Engine) peek() *Event {
	for len(e.queue) > 0 {
		if e.queue[0].dead {
			heap.Pop(&e.queue)
			continue
		}
		return e.queue[0]
	}
	return nil
}

// Pending reports the number of live queued events.
func (e *Engine) Pending() int {
	n := 0
	for _, ev := range e.queue {
		if !ev.dead {
			n++
		}
	}
	return n
}
