package transport

import (
	"fmt"

	"hyperion/internal/netsim"
	"hyperion/internal/sim"
)

// udpEndpoint is fire-and-forget: fragments go straight to the NIC; a
// message whose fragments all arrive is delivered, anything else is
// garbage-collected after a timeout and counted lost.
type udpEndpoint struct {
	eng   *sim.Engine
	nic   *netsim.NIC
	stats Stats

	sendOverhead sim.Duration
	recvOverhead sim.Duration
	reasmTimeout sim.Duration

	nextID  uint64
	handler func(src netsim.Addr, msg Message)
	partial map[string]*reasm
}

func newUDP(eng *sim.Engine, nic *netsim.NIC) *udpEndpoint {
	u := &udpEndpoint{
		eng:          eng,
		nic:          nic,
		sendOverhead: sim.Microsecond,
		recvOverhead: sim.Microsecond,
		reasmTimeout: 10 * sim.Millisecond,
		partial:      make(map[string]*reasm),
	}
	nic.OnReceive(u.onFrame)
	return u
}

func (u *udpEndpoint) Addr() netsim.Addr { return u.nic.Addr }
func (u *udpEndpoint) Kind() Kind        { return UDP }
func (u *udpEndpoint) Stats() *Stats     { return &u.stats }

func (u *udpEndpoint) OnMessage(fn func(src netsim.Addr, msg Message)) { u.handler = fn }

func (u *udpEndpoint) Send(dst netsim.Addr, msg Message) error {
	if msg.Bytes > MaxMessageBytes {
		return ErrTooLarge
	}
	u.nextID++
	id := u.nextID
	n := fragsFor(msg.Bytes)
	u.stats.Sent++
	u.eng.After(u.sendOverhead, "udp.send", func() {
		for i := 0; i < n; i++ {
			frag := dataFrag{MsgID: id, Index: i, Total: n, Bytes: msg.Bytes, Span: msg.Span}
			if i == n-1 {
				frag.Payload = msg.Payload
			}
			// Send errors mean the frame never left; UDP doesn't care.
			_ = u.nic.Send(netsim.Frame{Dst: dst, Payload: frag, Bytes: fragWire(msg.Bytes, i), Span: frag.Span})
			u.stats.DataFrames++
		}
	})
	return nil
}

func (u *udpEndpoint) onFrame(f netsim.Frame) {
	frag, ok := f.Payload.(dataFrag)
	if !ok {
		return
	}
	key := fmt.Sprintf("%s/%d", f.Src, frag.MsgID)
	r, ok := u.partial[key]
	if !ok {
		r = &reasm{total: frag.Total, bytes: frag.Bytes, span: frag.Span}
		u.partial[key] = r
		// Garbage-collect incomplete messages: that is UDP loss.
		u.eng.After(u.reasmTimeout, "udp.gc", func() {
			if rr, still := u.partial[key]; still && rr.have < rr.total {
				delete(u.partial, key)
				u.stats.LostMessages++
			}
		})
	}
	r.have++
	if frag.Payload != nil {
		r.payload = frag.Payload
	}
	if r.have == r.total {
		delete(u.partial, key)
		u.stats.Delivered++
		src := f.Src
		payload, bytes, span := r.payload, r.bytes, r.span
		u.eng.After(u.recvOverhead, "udp.deliver", func() {
			if u.handler != nil {
				u.handler(src, Message{Payload: payload, Bytes: bytes, Span: span})
			}
		})
	}
}
