// Package rack models a rack of CPU-free Hyperion DPU boxes behind a
// spine, driven by a large open-loop client population — the paper's
// rack-scale blueprint (§4) at a size one engine cannot reach. It is
// the first consumer of sim.Cluster: every box (NVMe device + KV-SSD
// over a segment store) and every client group is a logical process,
// the rack is partitioned across shards with netsim.Partition, and all
// box↔box and client↔box traffic crosses the spine as timestamped
// envelopes whose minimum latency is the cluster's lookahead.
//
// Shard-count invariance is a design obligation here, not an accident:
//
//   - every LP draws randomness from its own generator seeded from
//     (scenario seed, LP index) — never from a shard engine's Rand;
//   - per-box state (devices, stores, boundary links, wire pools) is
//     reachable from exactly one LP's handlers;
//   - a client group is always co-sharded with its box, so the
//     (group, box) pair migrates between layouts as a unit.
//
// Under those rules sim.Cluster guarantees the same event history for
// any shard count, so the rack's tables are pure functions of the
// seed (pinned by TestShardCountInvariance and E17's golden hash).
package rack

import (
	"encoding/binary"
	"fmt"

	"hyperion/internal/fault"
	"hyperion/internal/netsim"
	"hyperion/internal/nvme"
	"hyperion/internal/seg"
	"hyperion/internal/sim"
	"hyperion/internal/storage/kvssd"
	"hyperion/internal/telemetry"
	"hyperion/internal/wire"
)

// Envelope kinds on the spine.
const (
	opNVMeRead uint16 = iota // A=req id, B=lba
	opKVGet                  // A=req id, B=key index
	opKVPut                  // A=req id, B=key index, Data=value
	repPut                   // A=primary rep id, B=key index, Data=value
	repAck                   // A=primary rep id
	respRead                 // A=req id, B=status, Data=hdr+block
	respGet                  // A=req id, B=found, Data=hdr+value
	respPut                  // A=req id
	respErr                  // A=req id
)

// hdrBytes is the response header staged ahead of the payload in the
// box's pooled wire buffer (req id + aux, little-endian).
const hdrBytes = 16

// spineMsgOverhead models per-message framing on the spine.
const spineMsgOverhead = 64

// boxBlocks is each box's addressable LBA range for remote reads.
const boxBlocks = 1 << 16

// Config shapes one rack scenario.
type Config struct {
	Boxes         int          // DPU boxes (and client groups)
	Shards        int          // sim.Cluster shards
	ClientsPerBox int          // open-loop clients aggregated per group
	RatePerClient float64      // ops/sec issued by each client
	Horizon       sim.Duration // arrival window; completions drain after
	KeysPerBox    int          // preloaded KV keys per box
	ValueBytes    int          // KV value size
	Replicas      int          // KV replication factor (1 = no replication)
	Net           netsim.Config
	FaultRate     float64 // per-request box fault probability (0 = off)
}

// DefaultConfig returns a small, fast rack: 8 boxes, 32k clients.
func DefaultConfig() Config {
	return Config{
		Boxes:         8,
		Shards:        1,
		ClientsPerBox: 4000,
		RatePerClient: 150,
		Horizon:       2 * sim.Millisecond,
		KeysPerBox:    512,
		ValueBytes:    256,
		Replicas:      3,
		Net:           netsim.DefaultConfig(),
	}
}

// Rack is one built scenario. Construct with New, drive with Run,
// then read Totals/Cluster.
type Rack struct {
	cfg    Config
	cl     *sim.Cluster
	boxes  []*box
	groups []*group
	pools  []*wire.Pool // one wire pool per shard — never shared across
	value  []byte
}

// box is one Hyperion DPU: raw NVMe namespace for remote block reads
// plus a KV-SSD (B+ tree over the segment store) for the KV protocol.
type box struct {
	r      *Rack
	idx    int
	lp     sim.LP
	sh     *sim.Shard
	eng    *sim.Engine
	view   *seg.SyncView
	kv     *kvssd.KV
	host   *nvme.Host
	up     *netsim.BoundaryLink
	pool   *wire.Pool
	plan   *fault.Plan
	keyBuf [8]byte

	reps    []repState
	repIdle []int32

	getName, putName, repName string

	reads, gets, puts, dropped int64
}

// repState tracks one in-flight replicated put at its primary.
type repState struct {
	src   sim.LP
	reqID uint64
	acks  int
	used  bool
}

// group aggregates one box's worth of open-loop clients: a merged
// Poisson arrival process at ClientsPerBox × RatePerClient ops/sec.
type group struct {
	r    *Rack
	idx  int
	lp   sim.LP
	sh   *sim.Shard
	eng  *sim.Engine
	rng  *sim.Rand
	up   *netsim.BoundaryLink
	mean sim.Duration
	stop sim.Time

	pend []pendOp
	idle []int32

	pumpName string
	pumpFn   func()

	latRead, latGet, latPut sim.LatencyRecorder
	issued, ok, errs        int64
	bytesMoved              int64
}

// pendOp is one outstanding request at its issuing group.
type pendOp struct {
	t0   sim.Time
	kind uint16
	used bool
}

// New builds a rack for the given scenario seed: cluster, boxes with
// preloaded stores, client groups. rec, when non-nil, arms per-box
// telemetry; traced runs require Shards == 1 (a recorder sink is
// single-threaded state, and the tables are shard-count invariant
// anyway).
func New(cfg Config, seed uint64, rec *telemetry.Recorder) *Rack {
	if cfg.Boxes <= 0 || cfg.Shards <= 0 || cfg.Replicas <= 0 || cfg.Replicas > cfg.Boxes {
		panic(fmt.Sprintf("rack: bad config: %d boxes, %d shards, %d replicas", cfg.Boxes, cfg.Shards, cfg.Replicas))
	}
	if rec != nil && cfg.Shards != 1 {
		panic("rack: traced runs require exactly one shard")
	}
	if cfg.Shards > cfg.Boxes {
		cfg.Shards = cfg.Boxes
	}
	r := &Rack{
		cfg:   cfg,
		cl:    sim.NewCluster(cfg.Shards, seed, cfg.Net.Lookahead()),
		value: make([]byte, cfg.ValueBytes),
	}
	for i := range r.value {
		r.value[i] = byte(i*7 + 13)
	}
	r.pools = make([]*wire.Pool, cfg.Shards)
	for s := range r.pools {
		r.pools[s] = wire.NewPool(hdrBytes + 4096)
	}
	layout := netsim.Partition(cfg.Boxes, cfg.Shards)

	// Registration order is part of the deterministic envelope order:
	// box LPs first, then group LPs, both in box order.
	for i := 0; i < cfg.Boxes; i++ {
		b := r.newBox(i, layout[i], seed, rec)
		r.boxes = append(r.boxes, b)
	}
	for i := 0; i < cfg.Boxes; i++ {
		g := r.newGroup(i, layout[i], seed)
		r.groups = append(r.groups, g)
	}
	return r
}

func (r *Rack) newBox(i, shard int, seed uint64, rec *telemetry.Recorder) *box {
	cfg := r.cfg
	sh := r.cl.Shard(shard)
	eng := sh.Engine()

	ncfg := nvme.DefaultConfig(fmt.Sprintf("box%02d.flash", i))
	ncfg.Blocks = boxBlocks
	dev := nvme.New(eng, ncfg)
	host := nvme.NewHost(dev, nil)

	scfg := seg.DefaultConfig()
	scfg.DRAMBytes = 32 << 20
	scfg.CheckpointEvery = 0
	kcfg := nvme.DefaultConfig(fmt.Sprintf("box%02d.kvflash", i))
	kcfg.Blocks = boxBlocks
	view := seg.NewSyncView(seg.New(eng, scfg, []*nvme.Host{nvme.NewHost(nvme.New(eng, kcfg), nil)}))
	kv, err := kvssd.Create(view, seg.OID(0x4B, uint64(i+1)), kvssd.BackendBTree, true)
	if err != nil {
		panic(err)
	}

	b := &box{
		r: r, idx: i, lp: 0, sh: sh, eng: eng,
		view: view, kv: kv, host: host,
		up:      netsim.NewBoundaryLink(cfg.Net),
		pool:    r.pools[shard],
		getName: fmt.Sprintf("rack.get:b%02d", i),
		putName: fmt.Sprintf("rack.put:b%02d", i),
		repName: fmt.Sprintf("rack.rep:b%02d", i),
	}
	if cfg.FaultRate > 0 {
		b.plan = fault.NewPlanIndexed(seed, "rack.box", i).Set(fault.Drop, cfg.FaultRate)
	}
	if rec != nil {
		crec := rec.Child(fmt.Sprintf("rack.box%02d", i))
		dev.SetRecorder(crec)
		host.SetRecorder(crec)
	}
	// Preload the box's keyspace synchronously: pure construction, no
	// engine events, so every layout starts from identical state.
	for k := 0; k < cfg.KeysPerBox; k++ {
		if err := b.kv.Put(b.key(uint64(k)), r.value); err != nil {
			panic(err)
		}
	}
	view.TakeCost()

	b.lp = r.cl.AddLP(shard, b.handle)
	return b
}

func (r *Rack) newGroup(i, shard int, seed uint64) *group {
	cfg := r.cfg
	sh := r.cl.Shard(shard)
	rate := float64(cfg.ClientsPerBox) * cfg.RatePerClient
	g := &group{
		r: r, idx: i, sh: sh, eng: sh.Engine(),
		rng:      sim.NewRand(seed ^ (0x9e3779b97f4a7c15 * uint64(i+1))),
		up:       netsim.NewBoundaryLink(cfg.Net),
		mean:     sim.Duration(float64(sim.Second) / rate),
		stop:     sim.Time(0).Add(cfg.Horizon),
		pumpName: fmt.Sprintf("rack.arrive:g%02d", i),
	}
	g.pumpFn = g.pump
	g.lp = r.cl.AddLP(shard, g.handle)
	// First arrival: an engine event scheduled before Run, so every
	// layout seeds its traffic identically.
	first := sim.Time(0).Add(g.rng.Exp(g.mean))
	if first <= g.stop {
		g.eng.At(first, g.pumpName, g.pumpFn)
	}
	return g
}

// key renders a key index as the box's 8-byte key. The scratch buffer
// is safe to reuse: kvssd copies key bytes into its log and index.
func (b *box) key(k uint64) []byte {
	binary.LittleEndian.PutUint64(b.keyBuf[:], k)
	return b.keyBuf[:]
}

// reply stages hdr+payload in the box's shard-local wire pool and
// sends it up the box's spine link. Send copies the bytes into the
// envelope, so the Buf is released before returning — no reference
// ever crosses a shard boundary.
func (b *box) reply(dst sim.LP, kind uint16, id, aux uint64, payload []byte) {
	buf := b.pool.Get(hdrBytes + len(payload))
	wb := buf.Bytes()
	binary.LittleEndian.PutUint64(wb[0:8], id)
	binary.LittleEndian.PutUint64(wb[8:16], aux)
	copy(wb[hdrBytes:], payload)
	delay := b.up.Delay(b.eng.Now(), spineMsgOverhead+len(wb))
	b.sh.Send(b.lp, dst, delay, kind, id, aux, wb)
	buf.Release()
}

// handle serves one spine envelope addressed to this box.
func (b *box) handle(sh *sim.Shard, env sim.Envelope) {
	// The fault plane drops client requests only: replication traffic
	// stays reliable so a dropped put still answers its client.
	if env.Kind <= opKVPut && b.plan.Roll(fault.Drop) {
		b.dropped++
		b.reply(env.Src, respErr, env.A, 0, nil)
		return
	}
	switch env.Kind {
	case opNVMeRead:
		b.reads++
		src, id := env.Src, env.A
		lba := int64(env.B % boxBlocks)
		err := b.host.Read(0, lba, 1, func(data []byte, status uint16) {
			if status != nvme.StatusOK {
				b.reply(src, respErr, id, uint64(status), nil)
				return
			}
			b.reply(src, respRead, id, uint64(status), data)
		})
		if err != nil {
			b.reply(src, respErr, id, 0, nil)
		}
	case opKVGet:
		b.gets++
		src, id := env.Src, env.A
		val, found, err := b.kv.Get(b.key(env.B))
		if err != nil {
			panic(fmt.Sprintf("rack: box %d get: %v", b.idx, err))
		}
		aux := uint64(0)
		if found {
			aux = 1
		}
		b.view.Complete(b.eng, b.getName, func() {
			b.reply(src, respGet, id, aux, val)
		})
	case opKVPut:
		b.puts++
		if err := b.kv.Put(b.key(env.B), env.Data); err != nil {
			panic(fmt.Sprintf("rack: box %d put: %v", b.idx, err))
		}
		rid := b.allocRep(env.Src, env.A)
		// Fan the value out to the replica set now (replication is
		// concurrent with the local write); Send copies env.Data, which
		// is only valid during this handler.
		for k := 1; k < b.r.cfg.Replicas; k++ {
			peer := b.r.boxes[(b.idx+k)%b.r.cfg.Boxes]
			delay := b.up.Delay(b.eng.Now(), spineMsgOverhead+len(env.Data))
			sh.Send(b.lp, peer.lp, delay, repPut, rid, env.B, env.Data)
		}
		// The local write acks once its modeled cost has elapsed.
		b.view.Complete(b.eng, b.putName, func() { b.repDone(rid) })
	case repPut:
		src, id := env.Src, env.A
		if err := b.kv.Put(b.key(env.B), env.Data); err != nil {
			panic(fmt.Sprintf("rack: box %d replica put: %v", b.idx, err))
		}
		b.view.Complete(b.eng, b.repName, func() {
			b.reply(src, repAck, id, 0, nil)
		})
	case repAck:
		b.repDone(env.A)
	default:
		panic(fmt.Sprintf("rack: box %d: unknown envelope kind %d", b.idx, env.Kind))
	}
}

func (b *box) allocRep(src sim.LP, reqID uint64) uint64 {
	var rid uint64
	if n := len(b.repIdle); n > 0 {
		rid = uint64(b.repIdle[n-1])
		b.repIdle = b.repIdle[:n-1]
	} else {
		b.reps = append(b.reps, repState{})
		rid = uint64(len(b.reps) - 1)
	}
	b.reps[rid] = repState{src: src, reqID: reqID, used: true}
	return rid
}

// repDone counts one ack (local or remote) for a replicated put and
// answers the client when the set is complete.
func (b *box) repDone(rid uint64) {
	rs := &b.reps[rid]
	if !rs.used {
		panic(fmt.Sprintf("rack: box %d: ack for idle rep slot %d", b.idx, rid))
	}
	rs.acks++
	if rs.acks < b.r.cfg.Replicas {
		return
	}
	b.reply(rs.src, respPut, rs.reqID, 0, nil)
	rs.used = false
	b.repIdle = append(b.repIdle, int32(rid))
}

// pump issues one client op and schedules the next arrival while the
// horizon is open. The merged Poisson process is the superposition of
// the group's ClientsPerBox independent client processes.
func (g *group) pump() {
	g.issue()
	next := g.eng.Now().Add(g.rng.Exp(g.mean))
	if next <= g.stop {
		g.eng.At(next, g.pumpName, g.pumpFn)
	}
}

func (g *group) issue() {
	cfg := &g.r.cfg
	rng := g.rng
	dst := g.r.boxes[rng.Intn(cfg.Boxes)]
	id := g.alloc()
	p := &g.pend[id]
	p.t0 = g.eng.Now()
	p.used = true
	var bytes int
	var data []byte
	roll := rng.Float64()
	switch {
	case roll < 0.5:
		p.kind = opNVMeRead
		bytes = spineMsgOverhead
	case roll < 0.8:
		p.kind = opKVGet
		bytes = spineMsgOverhead + 8
	default:
		p.kind = opKVPut
		data = g.r.value
		bytes = spineMsgOverhead + 8 + len(data)
	}
	var aux uint64
	switch p.kind {
	case opNVMeRead:
		aux = uint64(rng.Intn(boxBlocks))
	default:
		aux = uint64(rng.Intn(cfg.KeysPerBox))
	}
	g.issued++
	delay := g.up.Delay(g.eng.Now(), bytes)
	g.sh.Send(g.lp, dst.lp, delay, p.kind, id, aux, data)
}

func (g *group) alloc() uint64 {
	if n := len(g.idle); n > 0 {
		id := g.idle[n-1]
		g.idle = g.idle[:n-1]
		return uint64(id)
	}
	g.pend = append(g.pend, pendOp{})
	return uint64(len(g.pend) - 1)
}

// handle consumes one response envelope.
func (g *group) handle(sh *sim.Shard, env sim.Envelope) {
	id := env.A
	p := &g.pend[id]
	if !p.used {
		panic(fmt.Sprintf("rack: group %d: response for idle req %d", g.idx, id))
	}
	lat := env.At.Sub(p.t0)
	switch env.Kind {
	case respRead:
		g.latRead.Record(lat)
		g.ok++
		g.bytesMoved += int64(len(env.Data) - hdrBytes)
	case respGet:
		g.latGet.Record(lat)
		g.ok++
		g.bytesMoved += int64(len(env.Data) - hdrBytes)
	case respPut:
		g.latPut.Record(lat)
		g.ok++
		g.bytesMoved += int64(g.r.cfg.ValueBytes)
	case respErr:
		g.errs++
	default:
		panic(fmt.Sprintf("rack: group %d: unknown response kind %d", g.idx, env.Kind))
	}
	p.used = false
	g.idle = append(g.idle, int32(id))
}

// Run drives the scenario to completion: all arrivals within the
// horizon, every response drained.
func (r *Rack) Run() { r.cl.Run() }

// Cluster exposes the underlying cluster for stats (windows, per-shard
// events, barrier stall).
func (r *Rack) Cluster() *sim.Cluster { return r.cl }

// Config returns the rack's configuration (after shard clamping).
func (r *Rack) Config() Config { return r.cfg }

// Totals is the deterministic scenario summary: a pure function of
// the seed, independent of shard count.
type Totals struct {
	Clients                         int
	Issued, OK, Errs                int64
	Reads, Gets, Puts               int64
	BytesMoved                      int64
	LatRead, LatGet, LatPut, LatAll sim.LatencyRecorder
}

// Totals merges per-group and per-box counters in box order.
func (r *Rack) Totals() *Totals {
	t := &Totals{Clients: r.cfg.Boxes * r.cfg.ClientsPerBox}
	for _, g := range r.groups {
		t.Issued += g.issued
		t.OK += g.ok
		t.Errs += g.errs
		t.BytesMoved += g.bytesMoved
		t.LatRead.Merge(&g.latRead)
		t.LatGet.Merge(&g.latGet)
		t.LatPut.Merge(&g.latPut)
	}
	for _, b := range r.boxes {
		t.Reads += b.reads
		t.Gets += b.gets
		t.Puts += b.puts
	}
	t.LatAll.Merge(&t.LatRead)
	t.LatAll.Merge(&t.LatGet)
	t.LatAll.Merge(&t.LatPut)
	return t
}
