// Constant array indices are range-checked as the access is resolved.
package prog

type Ctx struct {
	Vals [8]uint64
}

func Entry(ctx *Ctx) uint64 {
	b := ctx.Vals[9] // want 16 "index 9 out of range for [8]uint64" array-bounds
	return b
}
