package bench

import (
	"fmt"

	"hyperion/internal/cluster"
	"hyperion/internal/netsim"
	"hyperion/internal/sim"
)

// ClusterScaleOut goes beyond the paper's single-DPU evaluation to its
// §4 discussion question: distributed CPU-free applications over
// multiple DPUs. A client-routed, replicated KV runs over 1/2/4 DPUs;
// the harness reports shard balance and the replication/failover cost.
func ClusterScaleOut(seed uint64) Result {
	r := Result{ID: "X1", Title: "§4 — beyond one DPU: client-routed KV over a DPU rack"}
	r.Table.Header = []string{"dpus", "replicas", "ops", "mean put", "mean get", "max shard load", "failover works"}
	for _, tc := range []struct{ nodes, replicas int }{{1, 1}, {2, 1}, {4, 1}, {4, 3}} {
		eng := sim.NewEngine(seed)
		net := netsim.New(eng, netsim.DefaultConfig())
		c, err := cluster.New(eng, net, tc.nodes, tc.replicas)
		if err != nil {
			panic(err)
		}
		rt, err := cluster.NewRouter(c, "client")
		if err != nil {
			panic(err)
		}
		const ops = 300
		var putTotal, getTotal sim.Duration
		for i := 0; i < ops; i++ {
			k := []byte(fmt.Sprintf("key-%04d", i))
			t0 := eng.Now()
			rt.Put(k, []byte("value"), func(err error) {
				if err != nil {
					panic(err)
				}
				putTotal += eng.Now().Sub(t0)
			})
			eng.Run()
		}
		for i := 0; i < ops; i++ {
			k := []byte(fmt.Sprintf("key-%04d", i))
			t0 := eng.Now()
			rt.Get(k, func(_ []byte, err error) {
				if err != nil {
					panic(err)
				}
				getTotal += eng.Now().Sub(t0)
			})
			eng.Run()
		}
		var maxLoad int64
		for _, n := range c.Nodes {
			if n.Puts > maxLoad {
				maxLoad = n.Puts
			}
		}
		// Failover check (only meaningful with replication).
		failover := "n/a"
		if tc.replicas > 1 {
			k := []byte("key-0000")
			c.MarkDown(c.ReplicaSet(k)[0])
			ok := false
			rt.Get(k, func(val []byte, err error) { ok = err == nil && string(val) == "value" })
			eng.Run()
			if ok {
				failover = "yes"
			} else {
				failover = "NO"
			}
		}
		r.Table.AddRow(itoa(int64(tc.nodes)), itoa(int64(tc.replicas)), itoa(ops),
			(putTotal / ops).String(), (getTotal / ops).String(),
			fmt.Sprintf("%d/%d", maxLoad, ops), failover)
		r.observe(eng)
	}
	r.Notes = append(r.Notes,
		"client-driven routing keeps the path coordinator-free; replication trades put latency for surviving a DPU loss")
	return r
}
