package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one loaded, type-checked compilation unit.
type Package struct {
	Path      string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// Loader parses and type-checks packages without golang.org/x/tools.
// Dependencies are imported from gc export data located via
// `go list -export`, which works fully offline: the go toolchain
// compiles (or reuses from the build cache) whatever the target
// imports. Target packages themselves are parsed from source so the
// analyzers see syntax.
type Loader struct {
	// Dir is the module root: where `go list` runs.
	Dir string

	Fset    *token.FileSet
	exports map[string]string // import path -> export data file
	imp     types.Importer
}

// NewLoader returns a loader rooted at the module directory dir.
func NewLoader(dir string) *Loader {
	l := &Loader{Dir: dir, Fset: token.NewFileSet(), exports: make(map[string]string)}
	compiler := importer.ForCompiler(l.Fset, "gc", func(path string) (io.ReadCloser, error) {
		file, err := l.exportFile(path)
		if err != nil {
			return nil, err
		}
		return os.Open(file)
	})
	l.imp = importerFunc(func(path string) (*types.Package, error) {
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compiler.Import(path)
	})
	return l
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// exportFile resolves an import path to its export data, asking
// `go list -export` for anything the cache doesn't already hold.
func (l *Loader) exportFile(path string) (string, error) {
	if f, ok := l.exports[path]; ok {
		if f == "" {
			return "", fmt.Errorf("no export data for %q", path)
		}
		return f, nil
	}
	out, err := l.goList("-export", "-f", "{{.Export}}", "--", path)
	if err != nil {
		return "", fmt.Errorf("resolving import %q: %v", path, err)
	}
	f := strings.TrimSpace(string(out))
	l.exports[path] = f
	if f == "" {
		return "", fmt.Errorf("no export data for %q", path)
	}
	return f, nil
}

func (l *Loader) goList(args ...string) ([]byte, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = l.Dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	return out, nil
}

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Standard   bool
	Module     *struct {
		Path      string
		GoVersion string
	}
	Error *struct{ Err string }
}

// LoadPatterns expands package patterns (typically "./...") and returns
// the matched module packages parsed and type-checked, in a stable
// order. Dependencies — standard library included — are pre-resolved to
// export data in one `go list -export -deps` invocation.
func (l *Loader) LoadPatterns(patterns ...string) ([]*Package, error) {
	args := append([]string{
		"-e", "-export", "-deps",
		"-json=ImportPath,Dir,GoFiles,Export,DepOnly,Standard,Module,Error",
		"--",
	}, patterns...)
	out, err := l.goList(args...)
	if err != nil {
		return nil, err
	}
	var targets []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		if p.Error != nil && !p.DepOnly {
			return nil, fmt.Errorf("package %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			l.exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			pc := p
			targets = append(targets, &pc)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	pkgs := make([]*Package, 0, len(targets))
	for _, t := range targets {
		goVersion := ""
		if t.Module != nil && t.Module.GoVersion != "" {
			goVersion = "go" + t.Module.GoVersion
		}
		files := make([]string, len(t.GoFiles))
		for i, f := range t.GoFiles {
			files[i] = filepath.Join(t.Dir, f)
		}
		pkg, err := l.check(t.ImportPath, goVersion, files)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir parses every .go file in dir as a single package named by
// importPath and type-checks it. Used by the analysistest harness to
// load testdata packages, which live outside the module proper but may
// import module packages (e.g. hyperion/internal/sim).
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	return l.check(importPath, "", files)
}

func (l *Loader) check(importPath, goVersion string, filenames []string) (*Package, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(l.Fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer:  l.imp,
		Sizes:     types.SizesFor("gc", runtime.GOARCH),
		GoVersion: goVersion,
	}
	tpkg, err := conf.Check(importPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", importPath, err)
	}
	return &Package{Path: importPath, Fset: l.Fset, Files: files, Types: tpkg, TypesInfo: info}, nil
}

// ModuleRoot walks upward from dir to the enclosing go.mod, for callers
// (tests) that need a loader but don't know where the module starts.
func ModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}
