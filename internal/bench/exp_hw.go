package bench

import (
	"fmt"

	"hyperion/internal/baseline"
	"hyperion/internal/core"
	"hyperion/internal/ebpf"
	"hyperion/internal/ehdl"
	"hyperion/internal/energy"
	"hyperion/internal/fabric"
	"hyperion/internal/netsim"
	"hyperion/internal/nvme"
	"hyperion/internal/seg"
	"hyperion/internal/sim"
	"hyperion/internal/telemetry"
)

// bootDPU builds a standard experiment DPU.
func bootDPU(name string, seed uint64) (*sim.Engine, *core.DPU) {
	eng := sim.NewEngine(seed)
	net := netsim.New(eng, netsim.DefaultConfig())
	cfg := core.DefaultConfig(name)
	cfg.NVMe.Blocks = 1 << 20
	cfg.Seg.DRAMBytes = 128 << 20
	cfg.Seg.CheckpointEvery = 0
	d, _, err := core.Boot(eng, net, cfg)
	if err != nil {
		panic(err)
	}
	return eng, d
}

// Table1 reproduces Table 1 as a measurement: the same logical request
// (network in → compute → storage → network out) walked through each
// prior-art integration model versus Hyperion's unified path.
func Table1(_ uint64) Result {
	r := Result{ID: "E1", Title: "Table 1 — CPU involvement across integration models"}
	r.Table.Header = []string{"model", "cpu-touches", "pcie-hops", "copies", "latency", "what's missing"}
	paths := append(baseline.Table1Paths(), baseline.HyperionPath())
	var worst, hyperion sim.Duration
	for _, p := range paths {
		t := p.Totals()
		r.Table.AddRow(p.Model, itoa(int64(t.CPUTouches)), itoa(int64(t.PCIeHops)),
			itoa(int64(t.Copies)), t.Latency.String(), p.Lacks)
		if p.Model == "hyperion" {
			hyperion = t.Latency
		} else if t.Latency > worst {
			worst = t.Latency
		}
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("hyperion eliminates all CPU touches and copies; software-path latency %.1f–%.1fx lower",
			float64(paths[len(paths)-2].Totals().Latency)/float64(hyperion),
			float64(worst)/float64(hyperion)))
	return r
}

// Fig2 reproduces Figure 2 by driving requests through the assembled
// datapath and reporting per-stage latency.
func Fig2(seed uint64) Result { return fig2(seed, nil) }

// Fig2Traced is Fig2 with the telemetry plane armed: every probe
// becomes one request-scoped trace with per-stage spans (arbiter,
// pipeline, storage, egress) plus the substrate-level spans beneath
// them. The Result is byte-identical to Fig2 at the same seed.
func Fig2Traced(seed uint64, rec *telemetry.Recorder) Result { return fig2(seed, rec) }

func fig2(seed uint64, rec *telemetry.Recorder) Result {
	r := Result{ID: "E2", Title: "Figure 2 — end-to-end datapath stage latency"}
	r.Table.Header = []string{"blocks", "arbiter", "pipeline", "storage", "egress", "total"}
	eng, d := bootDPU("fig2", seed)
	if rec != nil {
		d.SetRecorder(rec)
	}
	if err := d.LoadAccelerator(0, core.ProbeBitstream(d.Cfg.AuthTag), nil); err != nil {
		panic(err)
	}
	eng.Run()
	for _, blocks := range []int{1, 8, 64} {
		var tr core.Fig2Trace
		err := d.Fig2Probe(0, blocks%4, int64(blocks)*7, blocks, func(got core.Fig2Trace, _ []byte, err error) {
			if err != nil {
				panic(err)
			}
			tr = got
		})
		if err != nil {
			panic(err)
		}
		eng.Run()
		r.Table.AddRow(itoa(int64(blocks)), tr.Arbiter.String(), tr.Pipeline.String(),
			tr.Storage.String(), tr.Egress.String(), tr.Total.String())
	}
	r.Notes = append(r.Notes, "path: QSFP → DEMUX/AXIS arbiter → eHDL slot → NVMe host IP → PCIe x4 → flash → back")
	r.observe(eng)
	return r
}

// Energy reproduces the §2 volume/energy claims: max-TDP and volume
// ratios, plus measured joules-per-op for a storage-read service on
// both platforms.
func Energy(seed uint64) Result {
	r := Result{ID: "E3", Title: "§2 — volume and energy: Hyperion vs 1U server"}
	r.Table.Header = []string{"platform", "max TDP (W)", "volume (L)", "µJ/op @ 4K read", "ops run"}
	hy, srv := energy.Hyperion(), energy.Server1U()

	const ops = 20000
	// Hyperion: requests ride the Figure 2 path.
	eng, d := bootDPU("energy", seed)
	if err := d.LoadAccelerator(0, core.ProbeBitstream(d.Cfg.AuthTag), nil); err != nil {
		panic(err)
	}
	eng.Run()
	hm := energy.NewMeter(hy, eng.Now())
	hm.SetUtilization(eng.Now(), 0.7) // busy service
	next := 0
	var issue func()
	issue = func() {
		if next >= ops {
			return
		}
		i := next
		next++
		_ = d.Fig2Probe(0, i%4, int64(i%1000), 1, func(core.Fig2Trace, []byte, error) {
			hm.AddOps(1)
			issue()
		})
	}
	// Keep 16 in flight for realistic utilization.
	for k := 0; k < 16; k++ {
		issue()
	}
	eng.Run()
	hEnd := eng.Now()

	// 1U server: same logical service through the CPU-centric
	// storage+network path model at the same concurrency.
	eng2 := sim.NewEngine(seed + 1)
	cpu := baseline.NewTimeSharedCPU(eng2, 16)
	path := baseline.Table1Paths()[3] // storage+network
	perReq := path.Totals().Latency
	sm := energy.NewMeter(srv, eng2.Now())
	sm.SetUtilization(eng2.Now(), 0.7)
	served := 0
	var serve func()
	serve = func() {
		if served >= ops {
			return
		}
		served++
		cpu.Serve(perReq, func() {
			sm.AddOps(1)
			serve()
		})
	}
	for k := 0; k < 16; k++ {
		serve()
	}
	eng2.Run()
	sEnd := eng2.Now()

	r.Table.AddRow(hy.Name, f1(hy.MaxTDPW), f1(hy.VolumeL), f2(hm.JoulesPerOp(hEnd)*1e6), itoa(hm.Ops()))
	r.Table.AddRow(srv.Name, f1(srv.MaxTDPW), f1(srv.VolumeL), f2(sm.JoulesPerOp(sEnd)*1e6), itoa(sm.Ops()))
	r.Notes = append(r.Notes,
		fmt.Sprintf("volume ratio %.1fx (paper: 5-10x), TDP ratio %.1fx (paper: 4-8x), measured energy/op ratio %.1fx",
			energy.VolumeRatio(hy, srv), energy.TDPRatio(hy, srv),
			sm.JoulesPerOp(sEnd)/hm.JoulesPerOp(hEnd)))
	r.observe(eng, eng2)
	return r
}

// Reconfig reproduces the §2 partial-reconfiguration claim: bitstream
// size sweep through the ICAP model, expecting the 10–100 ms window.
func Reconfig(seed uint64) Result {
	r := Result{ID: "E4", Title: "§2 — partial dynamic reconfiguration timescale"}
	r.Table.Header = []string{"bitstream", "size (MiB)", "reconfig time"}
	eng := sim.NewEngine(seed)
	f := fabric.New(eng, fabric.DefaultConfig(), "k")
	for _, mb := range []int64{1, 4, 8, 16, 32, 40, 64} {
		bs := &fabric.Bitstream{
			Name: fmt.Sprintf("bs-%dM", mb), SizeBytes: mb << 20,
			Depth: 8, II: 1, AuthTag: "k", Process: func(in any) any { return in },
		}
		var took sim.Duration
		start := eng.Now()
		if err := f.LoadBitstream(0, bs, func() { took = eng.Now().Sub(start) }); err != nil {
			panic(err)
		}
		eng.Run()
		r.Table.AddRow(bs.Name, itoa(mb), took.String())
	}
	r.Notes = append(r.Notes, "paper: coarse-grained spatial multiplexing at 10-100 ms timescales (4-40 MiB images)")
	r.observe(eng)
	return r
}

// Predictability reproduces the §2 predictable-performance claim:
// latency distribution of a fixed computation on a dedicated fabric
// slot with hostile co-tenants, versus the same work on a time-shared
// CPU host.
func Predictability(seed uint64) Result {
	r := Result{ID: "E5", Title: "§2 — predictable performance under co-location"}
	r.Table.Header = []string{"platform", "p50", "p99", "p99.9", "max", "p99/p50"}

	// Hyperion: tenant in slot 0, noisy neighbours saturating slots 1-4.
	eng, d := bootDPU("jitter", seed)
	mk := func(name string, ii int) *fabric.Bitstream {
		return &fabric.Bitstream{Name: name, SizeBytes: 4 << 20,
			Depth: 20, II: ii, AuthTag: d.Cfg.AuthTag, Process: func(in any) any { return in }}
	}
	if err := d.LoadAccelerator(0, mk("victim", 1), nil); err != nil {
		panic(err)
	}
	for s := 1; s < 5; s++ {
		if err := d.LoadAccelerator(s, mk(fmt.Sprintf("noisy%d", s), 1), nil); err != nil {
			panic(err)
		}
	}
	eng.Run()
	// Noise: hammer the co-tenant slots continuously.
	for s := 1; s < 5; s++ {
		for i := 0; i < 5000; i++ {
			_ = d.Submit(s, i, nil)
		}
	}
	var fl sim.LatencyRecorder
	const samples = 5000
	fired := 0
	var tick func()
	tick = func() {
		if fired >= samples {
			return
		}
		fired++
		start := eng.Now()
		_ = d.Submit(0, fired, func(any) { fl.Record(eng.Now().Sub(start)) })
		eng.After(2*sim.Microsecond, "pace", tick)
	}
	tick()
	eng.Run()

	// Host: same service time on a time-shared CPU with background load.
	eng2 := sim.NewEngine(seed + 2)
	cpu := baseline.NewTimeSharedCPU(eng2, 4)
	var cl sim.LatencyRecorder
	for i := 0; i < samples; i++ {
		at := sim.Time(i) * sim.Time(2*sim.Microsecond)
		eng2.At(at, "arr", func() {
			start := eng2.Now()
			cpu.Serve(80*sim.Nanosecond, func() { cl.Record(eng2.Now().Sub(start)) })
		})
	}
	eng2.Run()

	row := func(name string, l *sim.LatencyRecorder) {
		ratio := float64(l.Percentile(99)) / float64(maxDur(l.Percentile(50), 1*sim.Picosecond))
		r.Table.AddRow(name, l.Percentile(50).String(), l.Percentile(99).String(),
			l.Percentile(99.9).String(), l.Max().String(), f2(ratio))
	}
	row("hyperion slot (4 hostile co-tenants)", &fl)
	row("time-shared cpu (background load)", &cl)
	r.Notes = append(r.Notes, "spatial slots do not interfere: the fabric tenant's p99 equals its p50")
	r.observe(eng, eng2)
	return r
}

func maxDur(a, b sim.Duration) sim.Duration {
	if a > b {
		return a
	}
	return b
}

// SegmentVsPage reproduces the §2.1 translation-overhead argument:
// object-granular segment translation (one 2 MiB object = one entry)
// against page-granular virtual memory (the same object = 512 pages and
// 4-level walks) across working-set sizes.
func SegmentVsPage(seed uint64) Result {
	r := Result{ID: "E6", Title: "§2.1 — segment translation vs page walks"}
	r.Table.Header = []string{"objects (2MiB)", "pages (4KiB)", "seg ns/access", "seg hit%", "page ns/access", "tlb hit%", "walk/seg"}
	const accesses = 200000
	const objBytes = 2 << 20
	const pagesPerObj = objBytes / 4096
	for _, ws := range []int{64, 512, 4096} {
		// Segment side: ws objects, one descriptor each, zipf access.
		eng := sim.NewEngine(seed)
		ncfg := nvme.DefaultConfig("e6")
		ncfg.Blocks = 1 << 22
		host := nvme.NewHost(nvme.New(eng, ncfg), nil)
		scfg := seg.DefaultConfig()
		scfg.DRAMBytes = 1 << 30
		scfg.CheckpointEvery = 0
		scfg.CacheEntries = 1024
		st := seg.New(eng, scfg, []*nvme.Host{host})
		for i := 0; i < ws; i++ {
			if _, err := st.Alloc(seg.OID(1, uint64(i+1)), objBytes, true, seg.HintCold); err != nil {
				panic(err)
			}
		}
		rng := sim.NewRand(seed + 8)
		zip := sim.NewZipf(rng, uint64(ws), 0.9)
		var segCost sim.Duration
		for i := 0; i < accesses; i++ {
			_, c, err := st.Lookup(seg.OID(1, zip.Next()+1))
			if err != nil {
				panic(err)
			}
			segCost += c
		}
		segHit := float64(st.CacheHits) / float64(st.Lookups) * 100

		// Page side: the same accesses land on a random 4 KiB page of
		// the chosen object, so the TLB sees a 512×-larger key space.
		w := baseline.NewPageWalker(1024)
		rng2 := sim.NewRand(seed + 8)
		zip2 := sim.NewZipf(rng2, uint64(ws), 0.9)
		var pageCost sim.Duration
		for i := 0; i < accesses; i++ {
			obj := zip2.Next()
			page := obj*pagesPerObj + uint64(rng2.Intn(pagesPerObj))
			pageCost += w.Translate(page)
		}
		tlbHit := float64(w.TLBHits) / float64(w.Walks) * 100
		ratio := float64(pageCost) / float64(maxDur(segCost, 1*sim.Picosecond))
		r.Table.AddRow(itoa(int64(ws)), itoa(int64(ws*pagesPerObj)),
			f2(float64(segCost)/accesses/float64(sim.Nanosecond)), f1(segHit),
			f2(float64(pageCost)/accesses/float64(sim.Nanosecond)), f1(tlbHit), f2(ratio))
		r.observe(eng)
	}
	r.Notes = append(r.Notes, "object-granular entries cover 512x the reach of a page entry, so the descriptor cache keeps hitting long after the TLB thrashes")
	return r
}

// EBPFPipeline reproduces the §2.2 programming-stack numbers: verifier
// coverage, interpreter vs compiled-pipeline throughput, and warping
// gains.
func EBPFPipeline(seed uint64) Result {
	r := Result{ID: "E10", Title: "§2.2 — eBPF IR: verify, warp, pipeline"}
	r.Table.Header = []string{"program", "insns", "warped", "depth", "II", "interp ns/pkt", "pipeline ns/pkt", "speedup"}
	eng := sim.NewEngine(seed)
	f := fabric.New(eng, fabric.DefaultConfig(), "k")
	progs := e10Programs
	slot := 0
	for _, p := range progs {
		prog := ebpf.MustAssemble(p.src)
		vcfg := ebpf.DefaultVerifierConfig(nil)
		vcfg.CtxSize = 20
		plain, err := ehdl.Compile(prog, ehdl.Options{Name: p.name, AuthTag: "k", CtxBytes: 20, Verifier: vcfg})
		if err != nil {
			panic(err)
		}
		warped, err := ehdl.Compile(prog, ehdl.Options{Name: p.name, AuthTag: "k", CtxBytes: 20, Verifier: vcfg, Optimize: true})
		if err != nil {
			panic(err)
		}
		// Interpreter cost model: ~2 ns per instruction executed on an
		// embedded core (uBPF-class).
		vm := ebpf.NewVM(nil)
		_ = vm.Load(prog)
		ctx := make([]byte, 20)
		if _, err := vm.Run(ctx); err != nil {
			panic(err)
		}
		interpNs := float64(vm.Steps) * 2.0
		// Pipeline: II cycles per packet at the fabric clock.
		if err := f.LoadBitstream(slot%5, warped.Bitstream(), nil); err != nil {
			panic(err)
		}
		eng.Run()
		pipeNs := float64(warped.Stats.II) * 4.0 // 250 MHz
		r.Table.AddRow(p.name, itoa(int64(plain.Stats.Instructions)), itoa(int64(warped.Stats.Instructions)),
			itoa(int64(warped.Stats.Depth)), itoa(int64(warped.Stats.II)),
			f1(interpNs), f1(pipeNs), f1(interpNs/pipeNs))
		slot++
	}
	r.Notes = append(r.Notes, "verifier suite: see internal/ebpf tests (20+ rejection categories, range tracking)")
	r.observe(eng)
	return r
}
