package txn

import (
	"bytes"
	"errors"
	"testing"

	"hyperion/internal/nvme"
	"hyperion/internal/seg"
	"hyperion/internal/sim"
)

func newView(t testing.TB) *seg.SyncView {
	t.Helper()
	eng := sim.NewEngine(1)
	cfg := nvme.DefaultConfig("nvme")
	cfg.Blocks = 1 << 20
	host := nvme.NewHost(nvme.New(eng, cfg), nil)
	scfg := seg.DefaultConfig()
	scfg.DRAMBytes = 64 << 20
	scfg.CheckpointEvery = 0
	return seg.NewSyncView(seg.New(eng, scfg, []*nvme.Host{host}))
}

func setup(t testing.TB) (*seg.SyncView, *Manager, seg.ObjectID, seg.ObjectID) {
	t.Helper()
	v := newView(t)
	m, err := NewManager(v, seg.OID(600, 0))
	if err != nil {
		t.Fatal(err)
	}
	a, b := seg.OID(601, 1), seg.OID(601, 2)
	if _, err := v.Alloc(a, 4096, true, seg.HintAuto); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Alloc(b, 4096, true, seg.HintAuto); err != nil {
		t.Fatal(err)
	}
	return v, m, a, b
}

func TestCommitAppliesAtomically(t *testing.T) {
	v, m, a, b := setup(t)
	tx := m.Begin()
	_ = tx.Write(a, 0, []byte("AAAA"))
	_ = tx.Write(b, 100, []byte("BBBB"))
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	ga, _ := v.ReadAt(a, 0, 4)
	gb, _ := v.ReadAt(b, 100, 4)
	if string(ga) != "AAAA" || string(gb) != "BBBB" {
		t.Fatalf("applied = %q %q", ga, gb)
	}
	if m.Commits != 1 {
		t.Fatalf("commits = %d", m.Commits)
	}
}

func TestAbortAppliesNothing(t *testing.T) {
	v, m, a, _ := setup(t)
	tx := m.Begin()
	_ = tx.Write(a, 0, []byte("ZZZZ"))
	tx.Abort()
	got, _ := v.ReadAt(a, 0, 4)
	if !bytes.Equal(got, make([]byte, 4)) {
		t.Fatalf("abort leaked writes: %q", got)
	}
	if err := tx.Commit(); !errors.Is(err, ErrTxnClosed) {
		t.Fatalf("commit after abort = %v", err)
	}
}

func TestReadYourWrites(t *testing.T) {
	_, m, a, _ := setup(t)
	tx := m.Begin()
	_ = tx.Write(a, 10, []byte("hello"))
	got, err := tx.Read(a, 8, 10)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{0, 0, 'h', 'e', 'l', 'l', 'o', 0, 0, 0}
	if !bytes.Equal(got, want) {
		t.Fatalf("RYW = %v, want %v", got, want)
	}
}

func TestRecoveryReplaysCommittedUnapplied(t *testing.T) {
	v, m, a, b := setup(t)
	// Transaction 1 commits fully.
	tx1 := m.Begin()
	_ = tx1.Write(a, 0, []byte("ONE!"))
	if err := tx1.Commit(); err != nil {
		t.Fatal(err)
	}
	// Transaction 2 "crashes" after hardening the record.
	tx2 := m.Begin()
	_ = tx2.Write(a, 4, []byte("TWO!"))
	_ = tx2.Write(b, 0, []byte("TOO!"))
	if err := tx2.CommitWithoutApply(); err != nil {
		t.Fatal(err)
	}
	// Before recovery: tx2 writes not visible.
	got, _ := v.ReadAt(b, 0, 4)
	if string(got) == "TOO!" {
		t.Fatal("unapplied write visible before recovery")
	}
	// "Reboot": reopen the manager and recover.
	m2, err := Open(v, seg.OID(600, 0))
	if err != nil {
		t.Fatal(err)
	}
	n, err := m2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("replayed %d txns, want 1", n)
	}
	ga, _ := v.ReadAt(a, 0, 8)
	gb, _ := v.ReadAt(b, 0, 4)
	if string(ga) != "ONE!TWO!" || string(gb) != "TOO!" {
		t.Fatalf("after recovery: %q %q", ga, gb)
	}
	// Recovery is idempotent.
	n, err = m2.Recover()
	if err != nil || n != 0 {
		t.Fatalf("second recover = %d,%v", n, err)
	}
}

func TestRecoverNothingPending(t *testing.T) {
	_, m, a, _ := setup(t)
	tx := m.Begin()
	_ = tx.Write(a, 0, []byte("x"))
	_ = tx.Commit()
	n, err := m.Recover()
	if err != nil || n != 0 {
		t.Fatalf("recover = %d,%v", n, err)
	}
}

func TestLogChunkRollover(t *testing.T) {
	_, m, a, _ := setup(t)
	data := make([]byte, 4000)
	for i := 0; i < 300; i++ { // ~1.2 MB of records
		tx := m.Begin()
		_ = tx.Write(a, 0, data)
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if len(m.chunks) < 2 {
		t.Fatalf("chunks = %d, want ≥2", len(m.chunks))
	}
}

func TestTooLargeTxn(t *testing.T) {
	_, m, a, _ := setup(t)
	tx := m.Begin()
	_ = tx.Write(a, 0, make([]byte, maxRecBytes))
	if err := tx.Commit(); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v", err)
	}
}

func BenchmarkCommit(b *testing.B) {
	v := newView(b)
	m, err := NewManager(v, seg.OID(600, 0))
	if err != nil {
		b.Fatal(err)
	}
	a := seg.OID(601, 1)
	if _, err := v.Alloc(a, 4096, true, seg.HintAuto); err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := m.Begin()
		_ = tx.Write(a, int64(i%16)*256, payload)
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}
