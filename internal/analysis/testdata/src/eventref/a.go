// Package eventref is hyperlint golden-test input: EventRef handle
// discipline against the real hyperion/internal/sim API.
package eventref

import "hyperion/internal/sim"

var globalTimer sim.EventRef

type dev struct {
	eng   *sim.Engine
	timer sim.EventRef
}

func (d *dev) armGlobal() {
	globalTimer = d.eng.After(5*sim.Nanosecond, "tick", func() {}) // want `package-level var globalTimer`
}

func (d *dev) badCancel() {
	d.eng.Cancel(d.timer) // want `cancelled ref d\.timer is left set`
}

func (d *dev) goodCancel() {
	d.eng.Cancel(d.timer)
	d.timer = sim.NoEvent
}

func (d *dev) rearm() {
	d.eng.Cancel(d.timer)
	d.timer = d.eng.After(sim.Microsecond, "tick", func() {})
}

func (d *dev) branchReset(hard bool) {
	d.eng.Cancel(d.timer)
	if hard {
		d.timer = sim.NoEvent
	}
}

func (d *dev) localCancel(ref sim.EventRef) {
	d.eng.Cancel(ref) // locals die with the scope: no finding
}

func (d *dev) compare(a, b sim.EventRef) bool {
	if a == sim.NoEvent { // want `hand-rolled generation check`
		return false
	}
	return a != b // want `hand-rolled generation check`
}

func valid(a sim.EventRef) bool {
	return a.Valid() // the sanctioned liveness probe
}

func alias(r sim.EventRef) *sim.EventRef { // want `never alias them through a pointer`
	return &r // want `never alias them through a pointer`
}

func (d *dev) suppressedCompare(a sim.EventRef) bool {
	//hyperlint:allow(eventref) golden test: zero-ref comparison is deliberate here
	return a == sim.NoEvent
}

// Pooled-object recycle hazards: free-list pushes and prebound
// timer callbacks.

type pooledOp struct {
	eng     *sim.Engine
	timer   sim.EventRef
	retryFn func()
}

type opPool struct {
	opFree []*pooledOp
}

func (h *opPool) putUnreset(op *pooledOp) {
	h.opFree = append(h.opFree, op) // want `EventRef field timer unreset`
}

func (h *opPool) putFieldReset(op *pooledOp) {
	op.timer = sim.NoEvent
	h.opFree = append(h.opFree, op)
}

func (h *opPool) putWholeReset(op *pooledOp) {
	*op = pooledOp{eng: op.eng, retryFn: op.retryFn}
	h.opFree = append(h.opFree, op)
}

func (op *pooledOp) tick() {}

func (op *pooledOp) rearmDiscardedField(d sim.Duration) {
	op.eng.After(d, "retry", op.retryFn) // want `callback op\.retryFn is prebound on pooled pooledOp`
}

func (op *pooledOp) rearmDiscardedMethodValue(d sim.Duration) {
	op.eng.After(d, "retry", op.tick) // want `callback op\.tick is prebound on pooled pooledOp`
}

func (op *pooledOp) rearmStored(d sim.Duration) {
	op.timer = op.eng.After(d, "retry", op.retryFn)
}

func (op *pooledOp) closureDiscardIsFine(d sim.Duration) {
	op.eng.After(d, "fire", func() {}) // fire-and-forget closure: no finding
}

// oneshot never cycles through a free list, so a discarded prebound
// callback cannot outlive its instance's identity.
type oneshot struct {
	eng *sim.Engine
	fn  func()
}

func (o *oneshot) fire(d sim.Duration) {
	o.eng.After(d, "fire", o.fn)
}
