package seg

import (
	"fmt"

	"hyperion/internal/nvme"
	"hyperion/internal/sim"
)

// SyncView is the synchronous, functional access path used by the
// storage structures built on the segment store (B+ tree, LSM tree,
// filesystem, logs). Operations move bytes immediately and accumulate
// the latency the same access would cost on the modeled hardware;
// callers drain the accumulated cost with TakeCost and charge it to the
// simulation (typically by delaying their completion callback).
//
// This functional/timing split keeps pointer-walking code ordinary Go
// while preserving the dependent-access latency that the experiments
// measure. Queueing effects between concurrent operations are not
// modeled on this path; the async Store API remains for that.
type SyncView struct {
	s    *Store
	cost sim.Duration

	// Op counters for experiment reporting.
	Reads, Writes           int64
	DevReads, DevWrites     int64
	BytesRead, BytesWritten int64
}

// NewSyncView creates a view over s.
func NewSyncView(s *Store) *SyncView { return &SyncView{s: s} }

// Store returns the underlying store.
func (v *SyncView) Store() *Store { return v.s }

// TakeCost returns the accumulated modeled latency and resets it.
func (v *SyncView) TakeCost() sim.Duration {
	c := v.cost
	v.cost = 0
	return c
}

// PeekCost returns the accumulated cost without resetting.
func (v *SyncView) PeekCost() sim.Duration { return v.cost }

// Charge adds extra modeled latency (compute time, network hops).
func (v *SyncView) Charge(d sim.Duration) { v.cost += d }

// Alloc mirrors Store.Alloc (allocation is a table operation and charges
// one DRAM access).
func (v *SyncView) Alloc(id ObjectID, size int64, durable bool, hint Hint) (*Segment, error) {
	v.cost += v.s.cfg.DRAMLatency
	return v.s.Alloc(id, size, durable, hint)
}

// Free mirrors Store.Free.
func (v *SyncView) Free(id ObjectID) error {
	v.cost += v.s.cfg.DRAMLatency
	return v.s.Free(id)
}

// Stat looks up a segment entry, charging translation cost.
func (v *SyncView) Stat(id ObjectID) (*Segment, error) {
	sg, tc, err := v.s.Lookup(id)
	v.cost += tc
	return sg, err
}

// ReadAt copies length bytes at off from the object.
func (v *SyncView) ReadAt(id ObjectID, off, length int64) ([]byte, error) {
	sg, tc, err := v.s.Lookup(id)
	v.cost += tc
	if err != nil {
		return nil, err
	}
	if off < 0 || length < 0 || off+length > sg.Size {
		return nil, fmt.Errorf("%w: [%d,%d) of %d", ErrBounds, off, off+length, sg.Size)
	}
	v.Reads++
	v.BytesRead += length
	if sg.Loc == LocDRAM {
		v.cost += v.s.dramTime(length)
		out := make([]byte, length)
		copy(out, v.s.dram[sg.Addr+off:sg.Addr+off+length])
		return out, nil
	}
	dev, lba := v.s.split(sg.Addr)
	bs := int64(v.s.cfg.BlockSize)
	first := lba + off/bs
	nblocks := int((off+length+bs-1)/bs - off/bs)
	if nblocks < 1 {
		nblocks = 1
	}
	skip := off % bs
	d := v.s.devs[dev].Device()
	v.cost += d.AccessCost(nvme.OpRead, nblocks)
	v.DevReads++
	data := d.ReadSync(first, nblocks)
	return data[skip : skip+length], nil
}

// WriteAt stores data at off in the object (read-modify-write for
// unaligned NVMe edges, with the extra read charged).
func (v *SyncView) WriteAt(id ObjectID, off int64, data []byte) error {
	sg, tc, err := v.s.Lookup(id)
	v.cost += tc
	if err != nil {
		return err
	}
	length := int64(len(data))
	if off < 0 || off+length > sg.Size {
		return fmt.Errorf("%w: [%d,%d) of %d", ErrBounds, off, off+length, sg.Size)
	}
	v.Writes++
	v.BytesWritten += length
	if sg.Loc == LocDRAM {
		v.cost += v.s.dramTime(length)
		copy(v.s.dram[sg.Addr+off:], data)
		return nil
	}
	dev, lba := v.s.split(sg.Addr)
	bs := int64(v.s.cfg.BlockSize)
	first := lba + off/bs
	nblocks := int((off+length+bs-1)/bs - off/bs)
	if nblocks < 1 {
		nblocks = 1
	}
	skip := off % bs
	d := v.s.devs[dev].Device()
	if skip == 0 && length%bs == 0 {
		v.cost += d.AccessCost(nvme.OpWrite, nblocks)
		v.DevWrites++
		d.WriteSync(first, data)
		return nil
	}
	// RMW: read covering blocks, merge, write back.
	v.cost += d.AccessCost(nvme.OpRead, nblocks) + d.AccessCost(nvme.OpWrite, nblocks)
	v.DevReads++
	v.DevWrites++
	old := d.ReadSync(first, nblocks)
	copy(old[skip:], data)
	d.WriteSync(first, old)
	return nil
}

// Complete schedules cb after the accumulated cost, resetting it. This
// is the bridge back into simulated time for request handlers.
func (v *SyncView) Complete(eng *sim.Engine, name string, cb func()) {
	d := v.TakeCost()
	eng.After(d, name, cb)
}
