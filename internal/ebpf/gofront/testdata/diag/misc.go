// Backward gotos, goroutines, and unsupported statements.
package prog

type Ctx struct {
	A uint64
}

//hyperion:helper 9
func touch(v uint64) int64

func Entry(ctx *Ctx) uint64 {
	n := ctx.A
again:
	n += 1
	if n < 10 {
		goto again // want 3 "goto again jumps backward; programs must be loop-free (bounded for loops unroll)" forward-goto
	}
	go touch(n)    // want 2 "goroutines are outside the restricted subset" no-concurrency
	defer touch(n) // want 2 "defer is outside the restricted subset" no-concurrency
	return n
}
