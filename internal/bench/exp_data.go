package bench

import (
	"fmt"

	"hyperion/internal/netsim"
	"hyperion/internal/nvme"
	"hyperion/internal/nvmeof"
	"hyperion/internal/rpc"
	"hyperion/internal/seg"
	"hyperion/internal/sim"
	"hyperion/internal/storage/colfmt"
	"hyperion/internal/storage/hfs"
	"hyperion/internal/storage/kvssd"
	"hyperion/internal/trace"
	"hyperion/internal/transport"
	"hyperion/internal/wire"
)

// ColumnarScan reproduces §2.3: annotation-driven file access plus
// columnar predicate pushdown executed next to the data, against the
// CPU-mediated alternative that ships the whole object to the client.
func ColumnarScan(seed uint64) Result {
	r := Result{ID: "E12", Title: "§2.3 — file + columnar access without a CPU"}
	r.Table.Header = []string{"approach", "device reads", "bytes moved", "modeled time", "rows matched"}

	eng, v := newView(4, seed)
	// Build a filesystem with a columnar table inside it.
	fs, err := hfs.Mkfs(v, seg.OID(0xF5, 0), true)
	if err != nil {
		panic(err)
	}
	if err := fs.Mkdir("/warehouse"); err != nil {
		panic(err)
	}
	const rows = 100000
	w := colfmt.NewWriter(v, colfmt.Schema{Columns: []colfmt.Column{
		{Name: "ts", Type: colfmt.TypeInt64},
		{Name: "value", Type: colfmt.TypeInt64},
	}}, 4096)
	for i := 0; i < rows; i++ {
		if err := w.AppendInt64s(int64(i), int64(i%1000)); err != nil {
			panic(err)
		}
	}
	tableID := seg.OID(0xF6, 1)
	if err := w.Close(tableID, true); err != nil {
		panic(err)
	}
	// Record the table's location in the filesystem (a pointer file), so
	// the access path really starts from a path lookup.
	if err := fs.WriteFile("/warehouse/events.tbl", []byte(tableID.String())); err != nil {
		panic(err)
	}
	v.TakeCost()

	// (a) DPU-side: annotated path lookup + pushdown scan near data.
	ann := fs.Annotate()
	plan, err := hfs.CompilePlan("/warehouse/events.tbl")
	if err != nil {
		panic(err)
	}
	reads0, bytes0 := v.DevReads, v.BytesRead
	ptr, err := hfs.ExecPlan(v, ann, plan)
	if err != nil {
		panic(err)
	}
	oid, err := seg.ParseObjectID(string(ptr))
	if err != nil {
		panic(err)
	}
	rd, err := colfmt.OpenReader(v, oid)
	if err != nil {
		panic(err)
	}
	matched := 0
	if err := rd.ScanInt64("ts", 60000, 60999, func(b *colfmt.Batch, row int) bool {
		matched++
		return true
	}); err != nil {
		panic(err)
	}
	dpuTime := v.TakeCost()
	r.Table.AddRow("hyperion (annotated plan + pushdown)",
		itoa(v.DevReads-reads0), itoa(v.BytesRead-bytes0), dpuTime.String(), itoa(int64(matched)))

	// (b) CPU-mediated: the client fetches the whole table object over
	// the network and scans it host-side (no pushdown near data).
	sg, err := v.Stat(oid)
	if err != nil {
		panic(err)
	}
	reads1, bytes1 := v.DevReads, v.BytesRead
	if _, err := v.ReadAt(oid, 0, sg.Size); err != nil {
		panic(err)
	}
	// Network transfer of the whole object at 100 GbE + host scan cost.
	netTime := sim.Duration(float64(sg.Size) / 12.5e9 * float64(sim.Second))
	hostScan := sim.Duration(rows) * 2 * sim.Nanosecond
	cpuTime := v.TakeCost() + netTime + hostScan
	r.Table.AddRow("cpu-mediated (fetch all, scan on host)",
		itoa(v.DevReads-reads1), itoa(v.BytesRead-bytes1), cpuTime.String(), itoa(int64(matched)))
	r.Notes = append(r.Notes, fmt.Sprintf("speedup %.1fx; pushdown skipped %d of %d row groups",
		float64(cpuTime)/float64(dpuTime), rd.GroupsSkipped, rd.Groups()))
	r.observe(eng)
	return r
}

// KVStore reproduces the §2.4 KV-SSD workloads: YCSB mixes over both
// index backends (the B+/LSM ablation of §4).
func KVStore(seed uint64) Result {
	r := Result{ID: "E13", Title: "§2.4 — KV-SSD: YCSB mixes × index backend"}
	r.Table.Header = []string{"mix", "backend", "ops", "mean op", "dev reads/op", "dev writes/op"}
	const keys = 2000
	const ops = 4000
	for _, mix := range []trace.YCSBMix{trace.YCSBA, trace.YCSBB, trace.YCSBC} {
		for _, be := range []kvssd.Backend{kvssd.BackendBTree, kvssd.BackendLSM} {
			eng, v := newView(4, seed)
			kv, err := kvssd.Create(v, seg.OID(0x4B, 0), be, true)
			if err != nil {
				panic(err)
			}
			g := trace.NewKVGen(seed+20, keys, mix, 256)
			for _, k := range g.LoadKeys() {
				if err := kv.Put(trace.Key(k), g.Value(k)); err != nil {
					panic(err)
				}
			}
			v.TakeCost()
			r0, w0 := v.DevReads, v.DevWrites
			var total sim.Duration
			for i := 0; i < ops; i++ {
				op := g.Next()
				switch op.Kind {
				case 'r':
					if _, _, err := kv.Get(op.Key); err != nil {
						panic(err)
					}
				case 'u':
					if err := kv.Put(op.Key, op.Value); err != nil {
						panic(err)
					}
				}
				total += v.TakeCost()
			}
			r.Table.AddRow(mix.String(), be.String(), itoa(ops),
				(total / ops).String(),
				f2(float64(v.DevReads-r0)/ops), f2(float64(v.DevWrites-w0)/ops))
			r.observe(eng)
		}
	}
	r.Notes = append(r.Notes, "LSM buffers updates in the memtable (fewer device writes per op); the B+ tree reads fewer pages per get")
	return r
}

// NVMeoF reproduces the §2 remote-storage result: 4 KiB and 64 KiB
// accesses over NVMe-oF on each application-selected transport.
func NVMeoF(seed uint64) Result {
	r := Result{ID: "E14", Title: "§2 — NVMe-oF across application-selected transports"}
	r.Table.Header = []string{"transport", "4K read", "4K write", "64K read", "local flash", "remote tax"}
	local := nvme.DefaultConfig("x").ReadLatency
	for _, kind := range transport.Kinds() {
		eng := sim.NewEngine(seed)
		net := netsim.New(eng, netsim.DefaultConfig())
		tn, _ := net.Attach("tgt")
		in, _ := net.Attach("ini")
		ncfg := nvme.DefaultConfig("remote")
		ncfg.Blocks = 1 << 20
		host := nvme.NewHost(nvme.New(eng, ncfg), nil)
		srv := rpc.NewServer(eng, transport.New(eng, kind, tn), rpc.RunToCompletion)
		nvmeof.NewTarget(srv, host, 0)
		cli := rpc.NewClient(eng, transport.New(eng, kind, in))
		cli.Timeout = sim.Duration(sim.Second)

		call := func(method string, arg any, argBytes int) (sim.Duration, bool) {
			start := eng.Now()
			var end sim.Time
			ok := true
			cli.Call("tgt", method, arg, argBytes, func(val any, err error) {
				end = eng.Now()
				if err != nil {
					ok = false
				}
			})
			eng.Run()
			return end.Sub(start), ok
		}
		caps := wire.NewPool(64)
		r4, ok1 := call(nvmeof.MethodRead, nvmeof.EncodeReadArgs(caps, 0, 1), 64)
		w4, ok2 := call(nvmeof.MethodWrite, nvmeof.EncodeWriteArgs(caps, 8, make([]byte, 4096)), 4160)
		r64, ok3 := call(nvmeof.MethodRead, nvmeof.EncodeReadArgs(caps, 16, 16), 64)
		tax := "-"
		if ok1 && ok2 && ok3 {
			tax = f2(float64(r4)/float64(local)) + "x"
		} else if kind == transport.UDP {
			tax = "lossy"
		}
		r.Table.AddRow(kind.String(), r4.String(), w4.String(), r64.String(),
			sim.Duration(local).String(), tax)
		r.observe(eng)
	}
	r.Notes = append(r.Notes, "remote flash ≈ local flash with fast transports (ReFlex); TCP pays software per-frame cost, Homa/RDMA do not")
	return r
}
