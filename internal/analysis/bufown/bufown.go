// Package bufown is the flow-sensitive wire.Buf ownership check: every
// owned reference must reach exactly one Release on every path.
//
// The zero-copy plane refcounts pooled buffers by hand (PR 6); the
// runtime catches double-releases with a panic, but a *leaked*
// reference — an early error return that skips Release — only shows up
// as a pool that slowly stops recycling. This pass proves the protocol
// per function, eBPF-verifier style, over the flow package's CFGs:
//
//   - a reference obtained from an owning source (wire.Pool.Get,
//     Buf.Retain, any function declared //wire:owns) must be Released,
//     returned, or handed to an escaping consumer on every path;
//   - a must-released reference must not be Released again or used;
//   - a parameter declared //wire:borrows must not be Released;
//   - a parameter declared //wire:takes is an obligation the body must
//     discharge like any other owned reference;
//   - custody across //wire:sends calls (NIC.Send) is conditional on
//     the error result: the caller still owns the buffer on the
//     non-nil-error branch and must not touch it on the nil branch.
//
// The analysis is intentionally may-leak/must-misuse: a reference that
// *might* survive to function exit is reported as a leak (that is the
// point of the check), while double-release and use-after-release fire
// only when the bad state holds on every path, keeping false positives
// out of branchy datapath code. Escapes — storing a reference into a
// container, passing it to an unannotated callee, capturing it in a
// closure — end tracking silently: custody moved somewhere this
// intra-procedural pass cannot see.
//
// The check runs on every layer, including the harness and exempt
// layers: buffer custody is not a determinism contract, it is memory
// safety, and the self-lint gate runs it over the analysis framework
// itself.
package bufown

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"hyperion/internal/analysis"
	"hyperion/internal/analysis/flow"
)

// Analyzer is the bufown pass.
var Analyzer = &analysis.Analyzer{
	Name: "bufown",
	Doc:  "flow-sensitive wire.Buf custody: every owned reference reaches exactly one Release",
	Run:  run,
}

const wirePath = analysis.ModulePath + "/internal/wire"

// mask is the set of custody states a reference may be in at a program
// point (a may-analysis joins paths by union).
type mask uint8

const (
	owned    mask = 1 << iota // holds a reference that must be discharged
	released                  // discharged; further Release/use is a bug
	escaped                   // custody moved out of intra-procedural view
	condsend                  // owned iff the pending send error is non-nil
)

// cell tracks one reference obligation keyed by its access path.
type cell struct {
	origin  token.Pos // where the obligation was created
	m       mask
	condErr string // condsend: the error variable gating custody
}

// state maps access paths (flow.Path keys) to obligations. Treated as
// immutable; transfer functions clone before writing.
type state map[string]cell

func clone(s state) state {
	out := make(state, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

func run(pass *analysis.Pass) error {
	files := pass.NonTestFiles()
	cons := flow.Collect(files, pass.TypesInfo)
	for _, pe := range cons.Errs {
		pass.Reportf(pe.Pos, "%s", pe.Msg)
	}
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			var fc flow.Contract
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				fc, _ = cons.Local(fn)
			}
			analyzeFunc(pass, cons, fd.Body, fd.Type, fc)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					analyzeFunc(pass, cons, lit.Body, lit.Type, flow.Contract{})
				}
				return true
			})
		}
	}
	return nil
}

type prob struct {
	pass  *analysis.Pass
	cons  *flow.Contracts
	fc    flow.Contract // contract on the function being analyzed
	fnPos token.Pos     // fallback report position for boundary obligations
	// report is nil during fixpoint iteration and set during the final
	// reporting walk, so diagnostics fire exactly once.
	report func(pos token.Pos, format string, args ...any)
}

func analyzeFunc(pass *analysis.Pass, cons *flow.Contracts, body *ast.BlockStmt, ftype *ast.FuncType, fc flow.Contract) {
	p := &prob{pass: pass, cons: cons, fc: fc, fnPos: ftype.Pos()}
	g := flow.Build(body, pass.TypesInfo)
	res := flow.Solve(g, p, flow.Forward)

	// Reporting walk: replay each reachable block from its fixpoint
	// input with diagnostics enabled.
	seen := make(map[token.Pos]bool)
	p.report = func(pos token.Pos, format string, args ...any) {
		if !seen[pos] {
			seen[pos] = true
			pass.Reportf(pos, format, args...)
		}
	}
	for _, blk := range g.Blocks {
		in := res.In[blk]
		if in == nil {
			continue
		}
		st := in.(state)
		for _, n := range blk.Nodes {
			st = p.Transfer(n, st).(state)
		}
	}
	// Leak check: any obligation still (possibly) owned at exit.
	if exit := res.In[g.Exit]; exit != nil {
		reportLeaks(p, exit.(state))
	}
	p.report = nil
}

func reportLeaks(p *prob, st state) {
	// Deterministic order: cells sorted by origin position.
	var cells []cell
	keys := make(map[token.Pos]string)
	for k, c := range st {
		if c.m&(owned|condsend) == 0 {
			continue
		}
		cells = append(cells, c)
		keys[c.origin] = k
	}
	for i := 1; i < len(cells); i++ {
		for j := i; j > 0 && cells[j].origin < cells[j-1].origin; j-- {
			cells[j], cells[j-1] = cells[j-1], cells[j]
		}
	}
	for _, c := range cells {
		k := keys[c.origin]
		pos := c.origin
		if pos == token.NoPos {
			pos = p.fnPos // boundary obligation: a //wire:takes parameter
		}
		if c.m&condsend != 0 {
			p.report(pos, "custody of %s depends on a send error that is never checked against nil", k)
			continue
		}
		p.report(pos, "%s is not released on every path (leaked wire.Buf reference)", k)
	}
}

// ---- Problem implementation ----

func (p *prob) Boundary() flow.State {
	st := state{}
	// //wire:takes parameters arrive as obligations the body must
	// discharge.
	for _, name := range p.fc.Takes {
		st[name] = cell{origin: token.NoPos, m: owned}
	}
	return st
}

func (p *prob) Merge(a, b flow.State) flow.State {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	as, bs := a.(state), b.(state)
	out := clone(as)
	for k, bc := range bs {
		ac, ok := out[k]
		if !ok {
			out[k] = bc
			continue
		}
		ac.m |= bc.m
		if ac.origin == token.NoPos || (bc.origin != token.NoPos && bc.origin < ac.origin) {
			ac.origin = bc.origin
		}
		if ac.condErr == "" {
			ac.condErr = bc.condErr
		}
		out[k] = ac
	}
	return out
}

func (p *prob) Equal(a, b flow.State) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	as, bs := a.(state), b.(state)
	if len(as) != len(bs) {
		return false
	}
	for k, av := range as {
		bv, ok := bs[k]
		if !ok || av != bv {
			return false
		}
	}
	return true
}

// FlowEdge resolves conditional-send custody on error-check branches:
// crossing `err != nil` (true) the send failed and the caller owns the
// buffer; crossing `err == nil` (true) custody moved to the wire.
func (p *prob) FlowEdge(e flow.Edge, s flow.State) flow.State {
	if e.Cond == nil || s == nil {
		return s
	}
	be, ok := e.Cond.(*ast.BinaryExpr)
	if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
		return s
	}
	errName, ok := errNilTest(be)
	if !ok {
		return s
	}
	st := s.(state)
	var out state
	// err is non-nil on the true branch of != and the false branch of ==.
	nonNil := (be.Op == token.NEQ) == (e.Kind == flow.EdgeTrue)
	for k, c := range st {
		if c.m&condsend == 0 || c.condErr != errName {
			continue
		}
		if out == nil {
			out = clone(st)
		}
		c.m &^= condsend
		if nonNil {
			c.m |= owned
		} else {
			c.m |= released
		}
		c.condErr = ""
		out[k] = c
	}
	if out == nil {
		return s
	}
	return out
}

// errNilTest matches `x != nil` / `x == nil` / reversed, returning x's
// name when x is a plain identifier.
func errNilTest(be *ast.BinaryExpr) (string, bool) {
	if id, ok := flow.NilComparand(be.X, be.Y); ok {
		return id, true
	}
	return "", false
}

func (p *prob) Transfer(n ast.Node, s flow.State) flow.State {
	st := s.(state)
	switch n := n.(type) {
	case *ast.AssignStmt:
		return p.assign(n, st)
	case *ast.ExprStmt:
		return p.exprStmt(n, st)
	case *ast.ReturnStmt:
		return p.returnStmt(n, st)
	case *ast.DeferStmt:
		// The deferred call's custody effect is modeled by the CFG's
		// defer chain; registration itself moves nothing.
		return st
	case *ast.GoStmt:
		return p.escapeCallArgs(n.Call, p.escapeClosures(n, st))
	case ast.Expr:
		// Decomposed branch condition: uses only.
		st = p.escapeClosures(n, st)
		p.checkUses(n, st)
		return p.escapeNestedCalls(n, st)
	default:
		st = p.escapeClosures(n, st)
		p.checkUses(n, st)
		return p.escapeNestedCalls(n, st)
	}
}

// assign handles sources (x := Get(), x.f = Retain()), moves
// (y := x), conditional sends (err := nic.Send(...)), and overwrites.
func (p *prob) assign(n *ast.AssignStmt, st state) state {
	st = p.escapeClosures(n, st)

	if len(n.Rhs) == 1 && len(n.Lhs) >= 1 {
		rhs := analysis.Unparen(n.Rhs[0])
		lhsPath := flow.Path(p.pass.TypesInfo, p.pass.Pkg, n.Lhs[0])

		if call, ok := rhs.(*ast.CallExpr); ok {
			return p.assignCall(n, call, lhsPath, st)
		}
		if lit, ok := rhs.(*ast.CompositeLit); ok && lhsPath != "" {
			return p.assignComposite(n, lit, lhsPath, st)
		}
		// Move: y := x transfers the obligation to y. A store into
		// untrackable storage (a map slot, a field behind a pointer)
		// publishes the reference into a structure with its own
		// lifetime: escape instead. `_ = x` reads nothing and moves
		// nothing — the obligation stays put.
		if rhsPath := flow.Path(p.pass.TypesInfo, p.pass.Pkg, rhs); rhsPath != "" {
			if isBlank(n.Lhs[0]) {
				return st
			}
			if c, ok := st[rhsPath]; ok {
				if lhsPath == "" || storesThroughPointer(p.pass.TypesInfo, n.Lhs[0]) {
					return p.escapePath(rhsPath, st)
				}
				out := clone(st)
				delete(out, rhsPath)
				p.checkOverwrite(n, lhsPath, out)
				out[lhsPath] = c
				return out
			}
			// Aliasing or storing a root with tracked field obligations
			// (y := t, or c.buf[k] = t, where t.buf is tracked) escapes
			// them: the copy carries the reference out of view.
			return p.escapePath(rhsPath, st)
		}
	}

	// General case: nested calls escape their arguments; every lhs that
	// overwrites a tracked owned cell leaks it.
	for _, r := range n.Rhs {
		st = p.escapeNestedCalls(r, st)
	}
	out, cloned := st, false
	for _, l := range n.Lhs {
		lp := flow.Path(p.pass.TypesInfo, p.pass.Pkg, l)
		if lp == "" {
			continue
		}
		if _, ok := out[lp]; ok {
			if !cloned {
				out, cloned = clone(st), true
			}
			p.checkOverwrite(n, lp, out)
		}
	}
	return out
}

// assignCall binds the result of a call: owning sources create an
// obligation on the lhs; sends-contract calls mark the sent buffer
// conditional on the assigned error.
func (p *prob) assignCall(n *ast.AssignStmt, call *ast.CallExpr, lhsPath string, st state) state {
	info := p.pass.TypesInfo

	// x := y.Retain() — an owning source regardless of contract.
	if _, ok := p.bufMethod(call, "Retain"); ok {
		out := clone(st)
		p.checkOverwrite(n, lhsPath, out)
		if lhsPath == "" {
			p.reportf(call.Pos(), "owned reference from Retain is discarded (leaked wire.Buf reference)")
			return out
		}
		out[lhsPath] = cell{origin: call.Pos(), m: owned}
		return out
	}

	fn := analysis.Callee(info, call)
	c, hasContract := p.cons.For(fn)
	if hasContract {
		out := p.applyContractArgs(call, fn, c, st, n)
		if c.Owns {
			out = clone(out)
			p.checkOverwrite(n, lhsPath, out)
			if lhsPath == "" {
				p.reportf(call.Pos(), "owned result of %s is discarded (leaked wire.Buf reference)", fn.Name())
				return out
			}
			if isBufPtr(info.TypeOf(n.Lhs[0])) {
				out[lhsPath] = cell{origin: call.Pos(), m: owned}
			}
		}
		return out
	}

	// Unannotated call: arguments escape; the result is untracked. A
	// tracked lhs overwritten by an unknown result leaks its old cell.
	st = p.escapeCallArgs(call, st)
	if lhsPath != "" {
		if _, ok := st[lhsPath]; ok {
			out := clone(st)
			p.checkOverwrite(n, lhsPath, out)
			return out
		}
	}
	return st
}

// assignComposite tracks owning sources nested in composite-literal
// fields: tx := relTx{buf: x.Retain()} binds an obligation to tx.buf,
// and f := Frame{Buf: hdr} moves hdr's obligation to f.Buf.
func (p *prob) assignComposite(n *ast.AssignStmt, lit *ast.CompositeLit, lhsPath string, st state) state {
	info := p.pass.TypesInfo
	out := st
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok || !isBufPtr(info.TypeOf(kv.Value)) {
			continue
		}
		fieldPath := lhsPath + "." + key.Name
		val := analysis.Unparen(kv.Value)
		if call, ok := val.(*ast.CallExpr); ok {
			if _, isRetain := p.bufMethod(call, "Retain"); isRetain {
				out2 := clone(out)
				out2[fieldPath] = cell{origin: call.Pos(), m: owned}
				out = out2
				continue
			}
			if fn := analysis.Callee(info, call); fn != nil {
				if c, ok := p.cons.For(fn); ok && c.Owns {
					out2 := clone(out)
					out2[fieldPath] = cell{origin: call.Pos(), m: owned}
					out = out2
				}
			}
			continue
		}
		if vp := flow.Path(info, p.pass.Pkg, val); vp != "" {
			if c, ok := out[vp]; ok {
				out2 := clone(out)
				delete(out2, vp)
				out2[fieldPath] = c
				out = out2
			}
		}
	}
	return out
}

// exprStmt handles discharges (x.Release()), discarded sources, and
// generic escaping calls.
func (p *prob) exprStmt(n *ast.ExprStmt, st state) state {
	st = p.escapeClosures(n, st)
	call, ok := analysis.Unparen(n.X).(*ast.CallExpr)
	if !ok {
		p.checkUses(n.X, st)
		return st
	}

	if recvPath, ok := p.bufMethod(call, "Release"); ok {
		return p.release(call, recvPath, st)
	}
	if recvPath, ok := p.bufMethod(call, "Retain"); ok {
		// Discarded Retain: an extra reference now rides on the receiver
		// path and must be discharged like any other.
		out := clone(st)
		key := recvPath
		if key == "" {
			p.reportf(call.Pos(), "owned reference from Retain is discarded (leaked wire.Buf reference)")
			return out
		}
		c := out[key]
		if c.origin == token.NoPos {
			c.origin = call.Pos()
		}
		c.m |= owned
		out[key] = c
		return out
	}

	fn := analysis.Callee(p.pass.TypesInfo, call)
	if c, ok := p.cons.For(fn); ok {
		if c.Owns {
			p.reportf(call.Pos(), "owned result of %s is discarded (leaked wire.Buf reference)", fn.Name())
		}
		out := p.applyContractArgs(call, fn, c, st, nil)
		return out
	}
	return p.escapeCallArgs(call, st)
}

// release discharges one reference.
func (p *prob) release(call *ast.CallExpr, recvPath string, st state) state {
	if recvPath == "" {
		return st
	}
	// Releasing a //wire:borrows parameter is a custody violation even
	// when untracked.
	if base, _, _ := strings.Cut(recvPath, "."); base == recvPath {
		for _, b := range p.fc.Borrows {
			if b == recvPath {
				p.reportf(call.Pos(), "%s is declared //wire:borrows: the caller keeps custody; do not Release it", recvPath)
				return st
			}
		}
	}
	c, ok := st[recvPath]
	if !ok {
		return st
	}
	if c.m&escaped != 0 {
		return st // custody unclear; stay silent
	}
	out := clone(st)
	if c.m&(owned|condsend) == 0 && c.m&released != 0 {
		p.reportf(call.Pos(), "%s is already released on every path reaching this Release (double release)", recvPath)
		return out
	}
	c.m = released
	c.condErr = ""
	out[recvPath] = c
	return out
}

// returnStmt escapes returned references (custody moves to the caller)
// and flags returning a must-released buffer from an owning function.
func (p *prob) returnStmt(n *ast.ReturnStmt, st state) state {
	st = p.escapeClosures(n, st)
	out := st
	for _, r := range n.Results {
		out = p.escapeNestedCalls(r, out)
		rp := flow.Path(p.pass.TypesInfo, p.pass.Pkg, r)
		if rp == "" {
			continue
		}
		c, ok := out[rp]
		if !ok {
			continue
		}
		if p.fc.Owns && c.m == released {
			p.reportf(n.Pos(), "returning %s after Release from a //wire:owns function", rp)
		}
		out2 := clone(out)
		c.m = escaped
		out2[rp] = c
		out = out2
	}
	return out
}

// applyContractArgs applies takes/borrows/sends to a call's arguments.
// assignCtx, when non-nil, is the assignment receiving the call's
// results (used to name the error variable gating a send).
func (p *prob) applyContractArgs(call *ast.CallExpr, fn *types.Func, c flow.Contract, st state, assignCtx *ast.AssignStmt) state {
	info := p.pass.TypesInfo
	sig, _ := fn.Type().(*types.Signature)
	out := st
	for _, name := range c.Takes {
		if arg := argByParam(sig, call, name); arg != nil {
			if ap := flow.Path(info, p.pass.Pkg, arg); ap != "" {
				if cc, ok := out[ap]; ok {
					out2 := clone(out)
					cc.m = released
					cc.condErr = ""
					out2[ap] = cc
					out = out2
				}
			}
		}
	}
	// borrows: custody unchanged.
	for _, sr := range c.Sends {
		arg := argByParam(sig, call, sr.Param)
		if arg == nil {
			continue
		}
		sp := sentPath(info, p.pass.Pkg, arg, sr.Field)
		if sp == "" {
			continue
		}
		errName := ""
		if assignCtx != nil && len(assignCtx.Lhs) > 0 {
			errName = flow.Path(info, p.pass.Pkg, assignCtx.Lhs[len(assignCtx.Lhs)-1])
		}
		out2 := clone(out)
		cc := out2[sp]
		if cc.origin == token.NoPos {
			cc.origin = call.Pos()
		}
		if errName == "" || strings.Contains(errName, ".") {
			// Error discarded (or stored somewhere flow-opaque): the
			// failure branch can never release. Report at the call.
			p.reportf(call.Pos(), "error result of %s gates custody of %s; discarding it leaks the buffer on failure", fn.Name(), sp)
			cc.m = escaped
		} else {
			cc.m = condsend
			cc.condErr = errName
		}
		out2[sp] = cc
		out = out2
	}
	// Everything else passed by value to a contracted function that is
	// not mentioned in the contract: treated as borrow (no escape) —
	// the contract is the interface.
	return out
}

// sentPath resolves the access path of a conditionally-sent buffer:
// the argument itself, its named field, or — for composite-literal
// arguments like Frame{Buf: hdr} — the field's value.
func sentPath(info *types.Info, pkg *types.Package, arg ast.Expr, field string) string {
	arg = analysis.Unparen(arg)
	if field == "" {
		return flow.Path(info, pkg, arg)
	}
	if lit, ok := arg.(*ast.CompositeLit); ok {
		for _, el := range lit.Elts {
			kv, ok := el.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			if key, ok := kv.Key.(*ast.Ident); ok && key.Name == field {
				return flow.Path(info, pkg, kv.Value)
			}
		}
		return ""
	}
	if base := flow.Path(info, pkg, arg); base != "" {
		return base + "." + field
	}
	return ""
}

// argByParam maps a contract's parameter name to the call argument.
func argByParam(sig *types.Signature, call *ast.CallExpr, name string) ast.Expr {
	if sig == nil {
		return nil
	}
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if params.At(i).Name() == name {
			if i < len(call.Args) {
				return call.Args[i]
			}
			return nil
		}
	}
	return nil
}

// escapeCallArgs ends tracking for references reachable from an
// unannotated call's arguments and receiver.
func (p *prob) escapeCallArgs(call *ast.CallExpr, st state) state {
	info := p.pass.TypesInfo
	out := st
	escape := func(e ast.Expr) {
		e = analysis.Unparen(e)
		if lit, ok := e.(*ast.CompositeLit); ok {
			for _, el := range lit.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					if pth := flow.Path(info, p.pass.Pkg, kv.Value); pth != "" {
						out = p.escapePath(pth, out)
					}
				}
			}
			return
		}
		if ue, ok := e.(*ast.UnaryExpr); ok && ue.Op == token.AND {
			e = analysis.Unparen(ue.X)
		}
		if pth := flow.Path(info, p.pass.Pkg, e); pth != "" {
			if c, ok := out[pth]; ok && c.m == released {
				p.reportf(e.Pos(), "use of %s after Release", pth)
			}
			out = p.escapePath(pth, out)
		}
	}
	for _, a := range call.Args {
		escape(a)
	}
	// Method receiver: op.attempt() hands op's tracked fields to the
	// method — unless the receiver is the wire.Buf itself (its own
	// methods are custody-neutral and handled above).
	if sel, ok := analysis.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if !isBufPtr(info.TypeOf(sel.X)) {
			escape(sel.X)
		}
	}
	// Nested calls in arguments escape their own arguments too.
	for _, a := range call.Args {
		out = p.escapeNestedCalls(a, out)
	}
	return out
}

// escapePath escapes the cell at path and every cell underneath it
// (escaping op also escapes op.capsule).
func (p *prob) escapePath(path string, st state) state {
	var out state
	prefix := path + "."
	for k, c := range st {
		if k != path && !strings.HasPrefix(k, prefix) {
			continue
		}
		if out == nil {
			out = clone(st)
		}
		c.m = escaped
		c.condErr = ""
		out[k] = c
	}
	if out == nil {
		return st
	}
	return out
}

// escapeNestedCalls finds calls nested anywhere in an expression tree
// (not behind a FuncLit) and escapes their arguments.
func (p *prob) escapeNestedCalls(n ast.Node, st state) state {
	out := st
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := m.(*ast.CallExpr); ok {
			// Custody-neutral Buf methods (Bytes, Len, ...) keep
			// tracking alive; Release/Retain in expression position are
			// not statements and stay out of scope here.
			if sel, ok := analysis.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				if isBufPtr(p.pass.TypesInfo.TypeOf(sel.X)) {
					return true
				}
			}
			if fn := analysis.Callee(p.pass.TypesInfo, call); fn != nil {
				if _, hasContract := p.cons.For(fn); hasContract {
					return true // modeled precisely elsewhere
				}
			}
			out = p.escapeCallArgs(call, out)
		}
		return true
	})
	return out
}

// escapeClosures escapes every tracked cell whose root variable is
// captured by a function literal in n: the closure may release or
// retain it at any later time.
func (p *prob) escapeClosures(n ast.Node, st state) state {
	if len(st) == 0 {
		return st
	}
	out := st
	ast.Inspect(n, func(m ast.Node) bool {
		lit, ok := m.(*ast.FuncLit)
		if !ok {
			return true
		}
		ast.Inspect(lit.Body, func(b ast.Node) bool {
			id, ok := b.(*ast.Ident)
			if !ok {
				return true
			}
			for k := range out {
				root, _, _ := strings.Cut(k, ".")
				if root == id.Name {
					if sameVar(p.pass.TypesInfo, id) {
						out = p.escapePath(root, out)
					}
				}
			}
			return true
		})
		return false // don't double-visit nested literals
	})
	return out
}

// sameVar reports whether id resolves to a variable (any variable: the
// capture heuristic keys on names, and a false escape only silences).
func sameVar(info *types.Info, id *ast.Ident) bool {
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	_, ok := obj.(*types.Var)
	return ok
}

// checkOverwrite flags rebinding a path whose reference is owned on
// every incoming path — the old reference can never be released.
func (p *prob) checkOverwrite(n *ast.AssignStmt, lhsPath string, st state) {
	if lhsPath == "" {
		return
	}
	if c, ok := st[lhsPath]; ok {
		if c.m == owned {
			p.reportf(n.Pos(), "%s is overwritten while still owning a reference (leaked wire.Buf reference)", lhsPath)
		}
		delete(st, lhsPath)
	}
}

// checkUses flags reads of a must-released reference.
func (p *prob) checkUses(n ast.Node, st state) {
	if p.report == nil || len(st) == 0 {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		e, ok := m.(ast.Expr)
		if !ok {
			return true
		}
		pth := flow.Path(p.pass.TypesInfo, p.pass.Pkg, e)
		if pth == "" {
			return true
		}
		if c, ok := st[pth]; ok && c.m == released {
			p.reportf(e.Pos(), "use of %s after Release", pth)
			return false
		}
		return true
	})
}

// bufMethod matches a call to the named method on a *wire.Buf
// receiver, returning the receiver's access path.
func (p *prob) bufMethod(call *ast.CallExpr, name string) (string, bool) {
	sel, ok := analysis.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return "", false
	}
	if !isBufPtr(p.pass.TypesInfo.TypeOf(sel.X)) {
		return "", false
	}
	return flow.Path(p.pass.TypesInfo, p.pass.Pkg, sel.X), true
}

// isBlank matches the blank identifier.
func isBlank(e ast.Expr) bool {
	id, ok := analysis.Unparen(e).(*ast.Ident)
	return ok && id.Name == "_"
}

// storesThroughPointer reports whether lhs writes a field through a
// pointer — publishing the value into storage with its own lifetime.
func storesThroughPointer(info *types.Info, lhs ast.Expr) bool {
	sel, ok := analysis.Unparen(lhs).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	_, ok = info.TypeOf(sel.X).(*types.Pointer)
	return ok
}

func isBufPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	return ok && analysis.IsNamed(ptr.Elem(), wirePath, "Buf")
}

func (p *prob) reportf(pos token.Pos, format string, args ...any) {
	if p.report != nil {
		p.report(pos, format, args...)
	}
}
