package seg

import (
	"sort"
)

// allocator is a first-fit free-list allocator over a linear space of
// units (bytes for DRAM, blocks for NVMe). base offsets every returned
// address (used to reserve the table checkpoint area).
type allocator struct {
	base  int64
	total int64
	holes []hole // sorted by addr, coalesced
}

type hole struct{ addr, size int64 }

func newAllocator(total int64) *allocator {
	if total < 0 {
		total = 0
	}
	return &allocator{total: total, holes: []hole{{0, total}}}
}

// free returns the total unallocated units.
func (a *allocator) free() int64 {
	var f int64
	for _, h := range a.holes {
		f += h.size
	}
	return f
}

// alloc reserves n units, returning their starting address.
func (a *allocator) alloc(n int64) (int64, error) {
	if n <= 0 {
		return 0, ErrNoSpace
	}
	for i := range a.holes {
		if a.holes[i].size >= n {
			addr := a.holes[i].addr
			a.holes[i].addr += n
			a.holes[i].size -= n
			if a.holes[i].size == 0 {
				a.holes = append(a.holes[:i], a.holes[i+1:]...)
			}
			return addr + a.base, nil
		}
	}
	return 0, ErrNoSpace
}

// release returns n units at addr to the free list, coalescing
// neighbours.
func (a *allocator) release(addr, n int64) {
	if n <= 0 {
		return
	}
	addr -= a.base
	i := sort.Search(len(a.holes), func(i int) bool { return a.holes[i].addr >= addr })
	a.holes = append(a.holes, hole{})
	copy(a.holes[i+1:], a.holes[i:])
	a.holes[i] = hole{addr, n}
	// Coalesce with next, then previous.
	if i+1 < len(a.holes) && a.holes[i].addr+a.holes[i].size == a.holes[i+1].addr {
		a.holes[i].size += a.holes[i+1].size
		a.holes = append(a.holes[:i+1], a.holes[i+2:]...)
	}
	if i > 0 && a.holes[i-1].addr+a.holes[i-1].size == a.holes[i].addr {
		a.holes[i-1].size += a.holes[i].size
		a.holes = append(a.holes[:i], a.holes[i+1:]...)
	}
}

// lruCache models the hardware segment-descriptor cache: presence only,
// no payload (the cost model cares about hit/miss, not contents).
type lruCache struct {
	cap   int
	order []ObjectID // front = LRU, back = MRU
	set   map[ObjectID]bool
}

func newLRU(cap int) *lruCache {
	return &lruCache{cap: cap, set: make(map[ObjectID]bool, cap)}
}

func (c *lruCache) get(id ObjectID) bool {
	if !c.set[id] {
		return false
	}
	c.touch(id)
	return true
}

func (c *lruCache) put(id ObjectID) {
	if c.set[id] {
		c.touch(id)
		return
	}
	if len(c.order) >= c.cap {
		victim := c.order[0]
		c.order = c.order[1:]
		delete(c.set, victim)
	}
	c.order = append(c.order, id)
	c.set[id] = true
}

func (c *lruCache) touch(id ObjectID) {
	for i, v := range c.order {
		if v == id {
			c.order = append(c.order[:i], c.order[i+1:]...)
			c.order = append(c.order, id)
			return
		}
	}
}

func (c *lruCache) remove(id ObjectID) {
	if !c.set[id] {
		return
	}
	delete(c.set, id)
	for i, v := range c.order {
		if v == id {
			c.order = append(c.order[:i], c.order[i+1:]...)
			return
		}
	}
}
