package unsafeptr_test

import (
	"testing"

	"hyperion/internal/analysis/analysistest"
	"hyperion/internal/analysis/unsafeptr"
)

func TestUnsafeptr(t *testing.T) {
	analysistest.Run(t, "../testdata", unsafeptr.Analyzer,
		"unsafeptr", "unsafeptr_harness")
}
