package hyperion

import (
	"crypto/sha256"
	"fmt"
	"testing"

	"hyperion/internal/bench"
	"hyperion/internal/netsim"
	"hyperion/internal/sim"
	"hyperion/internal/telemetry"
)

// TestMetamorphicDeterminism is the seed-sweep form of the determinism
// contract: for EVERY experiment and a spread of seeds (not just the
// golden DefaultSeed), two runs at the same seed must render
// byte-identical tables. hyperlint proves the absence of banned
// nondeterminism sources syntactically; this catches what analysis
// can't see — map-order leaks, engine-sharing bugs, stale package
// state — because such bugs almost never reproduce identically twice
// across five different seeds. Subtests run in parallel; every
// experiment owns private engines.
func TestMetamorphicDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment 10 times")
	}
	seeds := []uint64{1, 2, 3, 5, 8}
	for _, e := range bench.All() {
		for _, seed := range seeds {
			e, seed := e, seed
			t.Run(fmt.Sprintf("%s/seed%d", e.ID, seed), func(t *testing.T) {
				t.Parallel()
				r1 := e.RunSeeded(seed)
				r2 := e.RunSeeded(seed)
				a, b := r1.Table.String(), r2.Table.String()
				if a != b {
					t.Fatalf("%s diverged across two runs at seed %d:\n--- first ---\n%s\n--- second ---\n%s",
						e.ID, seed, a, b)
				}
				if r1.Steps != r2.Steps {
					t.Fatalf("%s: event counts diverged at seed %d: %d vs %d (tables matched — nondeterminism is off-table)",
						e.ID, seed, r1.Steps, r2.Steps)
				}
				if r1.SimTime != r2.SimTime {
					t.Fatalf("%s: final virtual clocks diverged at seed %d: %v vs %v",
						e.ID, seed, r1.SimTime, r2.SimTime)
				}
				if len(r1.Table.Rows) == 0 {
					t.Fatalf("%s produced no rows at seed %d", e.ID, seed)
				}
			})
		}
	}
}

// TestShardCountInvariance is the PDES kernel's headline metamorphic
// relation: the shard count is a layout knob, never a physics knob.
// E17's table, event count, and final virtual clock must be
// byte-identical for every shard count at every seed, and the windowed
// (sim.Cluster-hosted, 1-shard) form of the existing X1 scale-out
// experiment must reproduce the plain single-engine run exactly —
// proving the barrier kernel adds no observable behavior of its own.
func TestShardCountInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the rack scenario at four shard counts per seed")
	}
	seeds := []uint64{1, 2, 3}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("E17/seed%d", seed), func(t *testing.T) {
			t.Parallel()
			base := bench.RackSharded(seed, 1)
			for _, shards := range []int{2, 4, 8} {
				r := bench.RackSharded(seed, shards)
				if got, want := r.Table.String(), base.Table.String(); got != want {
					t.Errorf("E17 at %d shards diverged from 1 shard at seed %d:\n--- %d shards ---\n%s\n--- 1 shard ---\n%s",
						shards, seed, shards, got, want)
				}
				if r.Steps != base.Steps {
					t.Errorf("E17 at %d shards ran %d events, 1 shard ran %d (seed %d)",
						shards, r.Steps, base.Steps, seed)
				}
				if r.SimTime != base.SimTime {
					t.Errorf("E17 at %d shards ended at %v, 1 shard at %v (seed %d)",
						shards, r.SimTime, base.SimTime, seed)
				}
			}
		})
		t.Run(fmt.Sprintf("E18/seed%d", seed), func(t *testing.T) {
			t.Parallel()
			base := bench.TenantsSharded(seed, 1)
			for _, shards := range []int{2, 4} {
				r := bench.TenantsSharded(seed, shards)
				if got, want := r.Table.String(), base.Table.String(); got != want {
					t.Errorf("E18 at %d shards diverged from 1 shard at seed %d:\n--- %d shards ---\n%s\n--- 1 shard ---\n%s",
						shards, seed, shards, got, want)
				}
				if r.Steps != base.Steps {
					t.Errorf("E18 at %d shards ran %d events, 1 shard ran %d (seed %d)",
						shards, r.Steps, base.Steps, seed)
				}
				if r.SimTime != base.SimTime {
					t.Errorf("E18 at %d shards ended at %v, 1 shard at %v (seed %d)",
						shards, r.SimTime, base.SimTime, seed)
				}
			}
		})
		t.Run(fmt.Sprintf("X1/seed%d", seed), func(t *testing.T) {
			t.Parallel()
			plain := bench.ClusterScaleOut(seed)
			windowed := bench.ClusterScaleOutWindowed(seed)
			if got, want := windowed.Table.String(), plain.Table.String(); got != want {
				t.Errorf("X1 under sim.Cluster diverged from the plain engine at seed %d:\n--- windowed ---\n%s\n--- plain ---\n%s",
					seed, got, want)
			}
			if windowed.Steps != plain.Steps {
				t.Errorf("X1 under sim.Cluster ran %d events, plain engine ran %d (seed %d)",
					windowed.Steps, plain.Steps, seed)
			}
			// The cluster clock legitimately rests at the final barrier
			// window's deadline, at most one lookahead past the plain
			// engine's last event — never before it.
			if d := windowed.SimTime.Sub(plain.SimTime); d < 0 || d > netsim.DefaultConfig().Lookahead() {
				t.Errorf("X1 under sim.Cluster ended at %v, plain at %v — outside one lookahead window (seed %d)",
					windowed.SimTime, plain.SimTime, seed)
			}
		})
	}
}

// TestTenantRelabelingInvariance pins E18's naming contract: tenant
// display names are pure labels. Re-running one sweep cell with every
// name mapped through a sort-order-scrambling rename must permute the
// per-tenant report rows — each renamed row carrying exactly the
// original's values — and leave the cell's summary table byte-identical
// (the summary carries no names, only physics).
func TestTenantRelabelingInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the tenant scenario repeatedly")
	}
	rename := func(s string) string {
		// Map the leading letter a↔z, b↔y, … so lexicographic order of
		// the renamed set differs from the original's.
		return fmt.Sprintf("r%c-%s", 'z'-s[0]+'a', s)
	}
	for _, seed := range []uint64{1, 2, 3} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			baseRes, baseRows := bench.TenantScenario(seed, 10, 2*sim.Millisecond, 0.01)
			renRes, renRows := bench.TenantScenarioRelabeled(seed, 10, 2*sim.Millisecond, 0.01, rename)
			if got, want := renRes.Table.String(), baseRes.Table.String(); got != want {
				t.Errorf("relabeling changed the summary at seed %d:\n--- renamed ---\n%s\n--- base ---\n%s", seed, got, want)
			}
			if len(renRows) != len(baseRows) {
				t.Fatalf("row counts differ: %d vs %d", len(renRows), len(baseRows))
			}
			for _, b := range baseRows {
				want := b
				want.Name = rename(b.Name)
				found := false
				for _, r := range renRows {
					if r.Name == want.Name {
						if r != want {
							t.Errorf("seed %d: tenant %q changed values under renaming:\n got %+v\nwant %+v", seed, b.Name, r, want)
						}
						found = true
						break
					}
				}
				if !found {
					t.Errorf("seed %d: no renamed row for tenant %q", seed, b.Name)
				}
			}
			for i := 1; i < len(renRows); i++ {
				if renRows[i-1].Name > renRows[i].Name {
					t.Errorf("seed %d: renamed report not sorted by the new names", seed)
				}
			}
		})
	}
}

// tracedDump bundles every armed-run artifact whose bytes the traced
// determinism sweep compares.
type tracedDump struct {
	table string
	trace []byte
	hist  string
	crit  string
}

func runTraced(t *testing.T, e bench.Experiment, seed uint64) tracedDump {
	t.Helper()
	res, rec, ok := bench.RunTracedExperiment(e, seed)
	if !ok {
		t.Fatalf("%s lost its traced form", e.ID)
	}
	if rec.Events() == 0 {
		t.Fatalf("%s recorded no spans while armed at seed %d", e.ID, seed)
	}
	return tracedDump{
		table: res.Table.String(),
		trace: rec.ChromeTrace(),
		hist:  rec.HistogramDump(),
		crit:  rec.CriticalPath(),
	}
}

// TestTracedMetamorphicDeterminism extends the seed sweep to the armed
// telemetry plane: for every traced experiment and seed, two armed runs
// must produce byte-identical trace JSON, histogram dumps, and
// critical-path summaries; the armed table must equal the disarmed
// table at the same seed (tracing is observation, never perturbation);
// and at the golden DefaultSeed the armed table must still hash to the
// cross-revision golden value.
func TestTracedMetamorphicDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every traced experiment repeatedly")
	}
	seeds := []uint64{1, 2, 3}
	for _, e := range bench.All() {
		if e.RunTraced == nil {
			continue
		}
		for _, seed := range seeds {
			e, seed := e, seed
			t.Run(fmt.Sprintf("%s/seed%d", e.ID, seed), func(t *testing.T) {
				t.Parallel()
				d1 := runTraced(t, e, seed)
				d2 := runTraced(t, e, seed)
				if string(d1.trace) != string(d2.trace) {
					t.Errorf("%s: trace JSON diverged across two armed runs at seed %d", e.ID, seed)
				}
				if d1.hist != d2.hist {
					t.Errorf("%s: histogram dump diverged at seed %d:\n--- first ---\n%s\n--- second ---\n%s",
						e.ID, seed, d1.hist, d2.hist)
				}
				if d1.crit != d2.crit {
					t.Errorf("%s: critical-path summary diverged at seed %d:\n--- first ---\n%s\n--- second ---\n%s",
						e.ID, seed, d1.crit, d2.crit)
				}
				if err := telemetry.ValidateChromeTrace(d1.trace); err != nil {
					t.Errorf("%s: armed trace fails schema validation at seed %d: %v", e.ID, seed, err)
				}
				dres := e.RunSeeded(seed)
				disarmed := dres.Table.String()
				if d1.table != disarmed {
					t.Errorf("%s: arming telemetry changed the table at seed %d:\n--- armed ---\n%s\n--- disarmed ---\n%s",
						e.ID, seed, d1.table, disarmed)
				}
				if seed == bench.DefaultSeed {
					want := goldenTableHashes[e.ID]
					if got := fmt.Sprintf("%x", sha256.Sum256([]byte(d1.table))); got != want {
						t.Errorf("%s: armed table drifted from the golden hash:\n got %s\nwant %s", e.ID, got, want)
					}
				}
			})
		}
	}
}
