package telemetry

import (
	"strings"
	"testing"
)

// TestValidateAcceptsPairedBE: a handcrafted document with nested B/E
// pairs and metadata passes — the validator accepts the full phase set,
// not only what our exporter emits.
func TestValidateAcceptsPairedBE(t *testing.T) {
	doc := `{"traceEvents":[
		{"name":"process_name","ph":"M","pid":1,"tid":0,"args":{"name":"p"}},
		{"name":"outer","ph":"B","pid":1,"tid":1,"ts":0},
		{"name":"inner","ph":"B","pid":1,"tid":1,"ts":1.5},
		{"name":"inner","ph":"E","pid":1,"tid":1,"ts":2},
		{"name":"op","ph":"X","pid":1,"tid":2,"ts":2,"dur":3},
		{"name":"outer","ph":"E","pid":1,"tid":1,"ts":9}
	]}`
	if err := ValidateChromeTrace([]byte(doc)); err != nil {
		t.Fatalf("valid paired B/E document rejected: %v", err)
	}
}

// TestValidateRejections walks every malformed-document class the
// validator must catch, checking both rejection and the diagnostic.
func TestValidateRejections(t *testing.T) {
	wrap := func(events string) string {
		return `{"traceEvents":[` + events + `]}`
	}
	cases := []struct {
		name    string
		doc     string
		wantErr string
	}{
		{"invalid json", `{"traceEvents":[`, "not valid JSON"},
		{"no events", `{"traceEvents":[]}`, "no traceEvents"},
		{"missing name", wrap(`{"ph":"X","pid":1,"tid":1,"ts":0,"dur":1}`), "missing name"},
		{"empty name", wrap(`{"name":"","ph":"X","pid":1,"tid":1,"ts":0,"dur":1}`), "missing name"},
		{"missing pid", wrap(`{"name":"a","ph":"X","tid":1,"ts":0,"dur":1}`), "missing pid/tid"},
		{"missing tid", wrap(`{"name":"a","ph":"X","pid":1,"ts":0,"dur":1}`), "missing pid/tid"},
		{"bad phase", wrap(`{"name":"a","ph":"Q","pid":1,"tid":1,"ts":0}`), "unsupported phase"},
		{"missing ts", wrap(`{"name":"a","ph":"X","pid":1,"tid":1,"dur":1}`), "missing ts"},
		{"ts regression", wrap(
			`{"name":"a","ph":"X","pid":1,"tid":1,"ts":5,"dur":1},` +
				`{"name":"b","ph":"X","pid":1,"tid":1,"ts":4,"dur":1}`), "regresses"},
		{"missing dur", wrap(`{"name":"a","ph":"X","pid":1,"tid":1,"ts":0}`), "missing dur"},
		{"negative dur", wrap(`{"name":"a","ph":"X","pid":1,"tid":1,"ts":0,"dur":-2}`), "negative dur"},
		{"E without B", wrap(`{"name":"a","ph":"E","pid":1,"tid":1,"ts":0}`), "E without matching B"},
		{"E on other thread", wrap(
			`{"name":"a","ph":"B","pid":1,"tid":1,"ts":0},` +
				`{"name":"a","ph":"E","pid":1,"tid":2,"ts":1}`), "E without matching B"},
		{"E closes wrong B", wrap(
			`{"name":"a","ph":"B","pid":1,"tid":1,"ts":0},` +
				`{"name":"b","ph":"E","pid":1,"tid":1,"ts":1}`), "does not close"},
		{"unclosed B", wrap(`{"name":"a","ph":"B","pid":1,"tid":1,"ts":0}`), "unclosed B"},
	}
	for _, c := range cases {
		err := ValidateChromeTrace([]byte(c.doc))
		if err == nil {
			t.Errorf("%s: accepted, want error containing %q", c.name, c.wantErr)
			continue
		}
		if !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.wantErr)
		}
	}
}
