package telemetry

import (
	"bytes"
	"testing"

	"hyperion/internal/sim"
)

// TestNilRecorderNoOps pins the disarmed contract: every method on a
// nil recorder is a safe no-op returning zero values.
func TestNilRecorderNoOps(t *testing.T) {
	var r *Recorder
	if r.Armed() {
		t.Fatal("nil recorder reports armed")
	}
	if c := r.Child("x"); c != nil {
		t.Fatalf("Child of nil = %v, want nil", c)
	}
	if id := r.NewRequest(); id != 0 {
		t.Fatalf("NewRequest on nil = %d, want 0", id)
	}
	r.Span("l", "n", 1, 0, sim.Time(int64(10*sim.Nanosecond)))
	r.Observe("l", "n", 5*sim.Nanosecond)
	r.Count("l", "n", 3)
	if n := r.Events(); n != 0 {
		t.Fatalf("Events on nil = %d, want 0", n)
	}
	if b := r.ChromeTrace(); b != nil {
		t.Fatalf("ChromeTrace on nil = %q, want nil", b)
	}
	if s := r.HistogramDump(); s != "" {
		t.Fatalf("HistogramDump on nil = %q, want empty", s)
	}
	if s := r.CriticalPath(); s != "" {
		t.Fatalf("CriticalPath on nil = %q, want empty", s)
	}
}

// TestDisarmedZeroAlloc pins the zero-cost half of the contract: the
// nil-recorder paths allocate nothing, so permanently-installed hooks
// are free when disarmed.
func TestDisarmedZeroAlloc(t *testing.T) {
	var r *Recorder
	var h *Histogram
	allocs := testing.AllocsPerRun(1000, func() {
		_ = r.NewRequest()
		r.Span("l", "n", 0, 0, 0)
		r.Observe("l", "n", 0)
		r.Count("l", "n", 1)
		_ = r.Child("x")
		_ = r.Events()
		h.Observe(0)
		h.Merge(nil)
	})
	if allocs != 0 {
		t.Fatalf("disarmed hooks allocate %.1f per run, want 0", allocs)
	}
}

// record drives one fixed sequence of telemetry onto rec.
func record(rec *Recorder) {
	child := rec.Child("scenario-a")
	for i := 0; i < 5; i++ {
		req := rec.NewRequest()
		base := sim.Time(int64(i) * int64(10*sim.Microsecond))
		rec.Span("net", "frame", req, base, base.Add(2*sim.Microsecond))
		rec.Span("nvme", "read", req, base.Add(2*sim.Microsecond), base.Add(9*sim.Microsecond))
		child.Span("app", "op", req, base, base.Add(9*sim.Microsecond))
		rec.Count("net", "frames", 1)
		child.Observe("app", "queue", sim.Duration(int64(i)*int64(sim.Nanosecond)))
	}
}

// TestRecorderDeterminism: identical call sequences yield byte-identical
// exports — the property the traced metamorphic sweep rests on.
func TestRecorderDeterminism(t *testing.T) {
	a, b := NewRecorder("root"), NewRecorder("root")
	record(a)
	record(b)
	if !bytes.Equal(a.ChromeTrace(), b.ChromeTrace()) {
		t.Error("ChromeTrace not byte-identical across identical runs")
	}
	if a.HistogramDump() != b.HistogramDump() {
		t.Error("HistogramDump not byte-identical across identical runs")
	}
	if a.CriticalPath() != b.CriticalPath() {
		t.Error("CriticalPath not byte-identical across identical runs")
	}
	if a.Events() != 15 {
		t.Errorf("Events = %d, want 15", a.Events())
	}
}

// TestNewRequestSequence: request ids are 1-based and global across
// children, so a request keeps its identity across process rows.
func TestNewRequestSequence(t *testing.T) {
	rec := NewRecorder("root")
	child := rec.Child("c")
	if got := rec.NewRequest(); got != 1 {
		t.Fatalf("first id = %d, want 1", got)
	}
	if got := child.NewRequest(); got != 2 {
		t.Fatalf("child id = %d, want 2 (shared sequence)", got)
	}
	if got := rec.NewRequest(); got != 3 {
		t.Fatalf("third id = %d, want 3", got)
	}
}

// TestChromeTraceSchema: the exporter's own output must satisfy the
// validator, contain the process/thread metadata, and keep sim
// timestamps monotone.
func TestChromeTraceSchema(t *testing.T) {
	rec := NewRecorder("root")
	record(rec)
	data := rec.ChromeTrace()
	if err := ValidateChromeTrace(data); err != nil {
		t.Fatalf("exporter output fails validation: %v\n%s", err, data)
	}
	for _, want := range []string{
		`"process_name"`, `"thread_name"`, `"root"`, `"scenario-a"`,
		`"ph":"X"`, `"cat":"net"`, `"cat":"app"`,
	} {
		if !bytes.Contains(data, []byte(want)) {
			t.Errorf("trace missing %s", want)
		}
	}
}

// TestCriticalPathPicksDominantStage: the stage with the largest
// aggregate duration wins, and e2e spans the request's full extent.
func TestCriticalPathPicksDominantStage(t *testing.T) {
	rec := NewRecorder("p")
	req := rec.NewRequest()
	rec.Span("net", "frame", req, 0, sim.Time(int64(1*sim.Microsecond)))
	rec.Span("nvme", "read", req,
		sim.Time(int64(1*sim.Microsecond)), sim.Time(int64(8*sim.Microsecond)))
	rec.Span("net", "frame", req,
		sim.Time(int64(8*sim.Microsecond)), sim.Time(int64(9*sim.Microsecond)))
	out := rec.CriticalPath()
	if !bytes.Contains([]byte(out), []byte("nvme:read")) {
		t.Fatalf("critical path does not name the dominant stage:\n%s", out)
	}
	// e2e = 9 µs = 9_000_000 ps; dominant stage 7_000_000 ps (77%).
	for _, want := range []string{"9000000", "7000000", "77"} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Errorf("critical path missing %s:\n%s", want, out)
		}
	}
	// Untagged spans must not create request rows.
	rec.Span("net", "bg", 0, 0, sim.Time(int64(50*sim.Microsecond)))
	if got := rec.CriticalPath(); got != out {
		t.Error("untagged (req=0) span changed the critical-path summary")
	}
}
