package hyperion

import (
	"fmt"
	"testing"

	"hyperion/internal/bench"
)

// TestMetamorphicDeterminism is the seed-sweep form of the determinism
// contract: for EVERY experiment and a spread of seeds (not just the
// golden DefaultSeed), two runs at the same seed must render
// byte-identical tables. hyperlint proves the absence of banned
// nondeterminism sources syntactically; this catches what analysis
// can't see — map-order leaks, engine-sharing bugs, stale package
// state — because such bugs almost never reproduce identically twice
// across five different seeds. Subtests run in parallel; every
// experiment owns private engines.
func TestMetamorphicDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment 10 times")
	}
	seeds := []uint64{1, 2, 3, 5, 8}
	for _, e := range bench.All() {
		for _, seed := range seeds {
			e, seed := e, seed
			t.Run(fmt.Sprintf("%s/seed%d", e.ID, seed), func(t *testing.T) {
				t.Parallel()
				r1 := e.RunSeeded(seed)
				r2 := e.RunSeeded(seed)
				a, b := r1.Table.String(), r2.Table.String()
				if a != b {
					t.Fatalf("%s diverged across two runs at seed %d:\n--- first ---\n%s\n--- second ---\n%s",
						e.ID, seed, a, b)
				}
				if r1.Steps != r2.Steps {
					t.Fatalf("%s: event counts diverged at seed %d: %d vs %d (tables matched — nondeterminism is off-table)",
						e.ID, seed, r1.Steps, r2.Steps)
				}
				if r1.SimTime != r2.SimTime {
					t.Fatalf("%s: final virtual clocks diverged at seed %d: %v vs %v",
						e.ID, seed, r1.SimTime, r2.SimTime)
				}
				if len(r1.Table.Rows) == 0 {
					t.Fatalf("%s produced no rows at seed %d", e.ID, seed)
				}
			})
		}
	}
}
