// Package netsim models the 100 Gbps Ethernet fabric that Hyperion DPUs
// and client hosts attach to: NICs, full-duplex links with serialization
// and propagation delay, and a store-and-forward switch with bounded
// output queues (so transports above see real loss under congestion).
package netsim

import (
	"errors"
	"fmt"

	"hyperion/internal/fault"
	"hyperion/internal/sim"
	"hyperion/internal/telemetry"
	"hyperion/internal/wire"
)

// Addr identifies a NIC on the network.
type Addr string

// Frame is one Ethernet-level unit. Span carries the request-scoped
// trace context across the wire (0 = untagged); it rides beside the
// payload exactly like a tag in a real frame's metadata.
//
// Buf, when non-nil, is the frame's wire bytes (header and inline
// payload) in a pooled buffer. Ownership: a successful Send transfers
// one reference to the network, which releases it when the frame is
// dropped, discarded as corrupt, or after the receiver's handler
// returns — a receiver that keeps the bytes must Retain. On a Send
// error the caller keeps its reference. Payload remains for
// by-reference payloads (transports put the application object of the
// last fragment here).
type Frame struct {
	Src, Dst Addr
	Payload  any
	Buf      *wire.Buf
	Bytes    int
	Span     telemetry.RequestID
}

// MTU-ish bounds; jumbo frames are the datacenter norm.
const (
	MinFrameBytes = 64
	MaxFrameBytes = 9216
)

// Errors.
var (
	ErrUnknownDst = errors.New("netsim: unknown destination")
	ErrDupAddr    = errors.New("netsim: address already attached")
	ErrFrameSize  = errors.New("netsim: frame size out of range")
)

// Config shapes the network.
type Config struct {
	LinkBytesPerSec int64        // per-direction link bandwidth
	PropDelay       sim.Duration // one-way wire propagation (per hop)
	SwitchLatency   sim.Duration // switch forwarding latency
	QueueFrames     int          // switch output queue depth
}

// DefaultConfig is a 100 GbE datacenter fabric: 12.5 GB/s links, 500 ns
// propagation per hop, 300 ns cut-through-ish switch latency, 256-frame
// output queues.
func DefaultConfig() Config {
	return Config{
		LinkBytesPerSec: 12_500_000_000,
		PropDelay:       500 * sim.Nanosecond,
		SwitchLatency:   300 * sim.Nanosecond,
		QueueFrames:     256,
	}
}

// NIC is one attached endpoint.
type NIC struct {
	Addr Addr
	net  *Network
	recv func(Frame)

	// Event names are per-NIC constants; precomputing them keeps the
	// per-frame path free of string concatenation.
	upName, downName string

	txBusy             sim.Time // serialization horizon of the host→switch link
	TxFrames, RxFrames int64
	TxBytes, RxBytes   int64
	RxCorrupt          int64 // frames discarded by the NIC's integrity check
}

// OnReceive installs the receive handler.
func (n *NIC) OnReceive(fn func(Frame)) { n.recv = fn }

// Send transmits one frame. Sends serialize on the NIC's uplink; the
// switch may drop the frame if the destination's output queue is full
// (counted in the network's Drops). On success the network owns
// f.Buf's reference and releases it at delivery or drop; on error the
// caller keeps it.
//
//wire:sends f.Buf
func (n *NIC) Send(f Frame) error {
	f.Src = n.Addr
	if f.Bytes < MinFrameBytes {
		f.Bytes = MinFrameBytes
	}
	if f.Bytes > MaxFrameBytes {
		return fmt.Errorf("%w: %d", ErrFrameSize, f.Bytes)
	}
	dst, ok := n.net.nics[f.Dst]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownDst, f.Dst)
	}
	n.TxFrames++
	n.TxBytes += int64(f.Bytes)
	eng := n.net.eng
	now := eng.Now()
	start := n.txBusy
	if start < now {
		start = now
	}
	ser := n.net.serTime(f.Bytes)
	n.txBusy = start.Add(ser)
	arriveAtSwitch := n.txBusy.Add(n.net.cfg.PropDelay)
	fe := n.net.getFrameEvent()
	fe.f = f
	fe.dst = dst
	//hyperlint:allow(eventref) one-shot leg event: its own firing is the only thing that recycles fe, so there is no cancel window
	eng.At(arriveAtSwitch, n.upName, fe.upFn)
	return nil
}

// frameEvent carries one in-flight frame through its two scheduled
// legs (uplink → switch, switch → downlink) without a fresh closure
// per leg; instances cycle through the network's free list.
type frameEvent struct {
	net     *Network
	f       Frame
	dst     *NIC
	arrive  sim.Time
	corrupt bool
	upFn    func() // prebound fe.uplink
	downFn  func() // prebound fe.deliver
}

func (fe *frameEvent) uplink() { fe.net.switchForward(fe) }

func (fe *frameEvent) deliver() {
	n, f, dst := fe.net, fe.f, fe.dst
	n.outQueue[f.Dst]--
	if fe.corrupt {
		// The frame arrived but failed the NIC's FCS check: count
		// and discard without surfacing it to the stack.
		dst.RxCorrupt++
		if n.rec != nil {
			n.rec.Count("net", "rx_corrupt", 1)
		}
		if f.Buf != nil {
			f.Buf.Release()
		}
		n.putFrameEvent(fe)
		return
	}
	dst.RxFrames++
	dst.RxBytes += int64(f.Bytes)
	if n.rec != nil {
		n.rec.Span("net", "frame", f.Span, fe.arrive, n.eng.Now())
	}
	n.putFrameEvent(fe)
	if dst.recv != nil {
		dst.recv(f)
	}
	if f.Buf != nil {
		f.Buf.Release()
	}
}

func (n *Network) getFrameEvent() *frameEvent {
	if len(n.feFree) == 0 {
		fe := &frameEvent{net: n}
		fe.upFn = fe.uplink
		fe.downFn = fe.deliver
		return fe
	}
	fe := n.feFree[len(n.feFree)-1]
	n.feFree = n.feFree[:len(n.feFree)-1]
	return fe
}

func (n *Network) putFrameEvent(fe *frameEvent) {
	fe.f = Frame{}
	fe.dst = nil
	fe.corrupt = false
	n.feFree = append(n.feFree, fe)
}

// Network is the fabric: a single switch with one full-duplex link per
// NIC, which matches a rack-scale deployment of Hyperion DPUs.
type Network struct {
	eng  *sim.Engine
	cfg  Config
	nics map[Addr]*NIC
	// Per-destination output port state.
	outBusy  map[Addr]sim.Time
	outQueue map[Addr]int

	feFree []*frameEvent // frame-event free list

	plan *fault.Plan
	rec  *telemetry.Recorder

	Drops         int64 // congestion drops (output queue full)
	Forwards      int64
	FaultDrops    int64 // injected frame drops
	FaultCorrupts int64 // injected frame corruptions
	FaultReorders int64 // injected frame reorderings
}

// New creates an empty network.
func New(eng *sim.Engine, cfg Config) *Network {
	if cfg.LinkBytesPerSec <= 0 || cfg.QueueFrames <= 0 {
		panic("netsim: invalid config")
	}
	return &Network{
		eng:      eng,
		cfg:      cfg,
		nics:     make(map[Addr]*NIC),
		outBusy:  make(map[Addr]sim.Time),
		outQueue: make(map[Addr]int),
	}
}

// Config returns the network configuration.
func (n *Network) Config() Config { return n.cfg }

// SetFaultPlan installs a fault plan consulted once per forwarded frame
// (kinds Drop, Corrupt, Reorder). A nil plan — the default — or a plan
// with all rates at zero leaves the forwarding path bit-identical to an
// uninstrumented network.
func (n *Network) SetFaultPlan(p *fault.Plan) { n.plan = p }

// SetRecorder arms (or with nil, disarms) the telemetry plane: one
// span per delivered frame (switch arrival to NIC delivery) plus drop
// counters. Disarmed, the hooks are pure nil checks — no allocation,
// no time or rng consumption — so forwarding stays bit-identical.
func (n *Network) SetRecorder(rec *telemetry.Recorder) { n.rec = rec }

// Reorder slip bounds: an injected reorder delays one frame by a
// uniform extra latency in this window, enough to slip behind several
// back-to-back successors at 100 GbE but far below transport RTOs.
const (
	reorderSlipLo = 2 * sim.Microsecond
	reorderSlipHi = 20 * sim.Microsecond
)

// Attach adds a NIC with the given address.
func (n *Network) Attach(addr Addr) (*NIC, error) {
	if _, ok := n.nics[addr]; ok {
		return nil, fmt.Errorf("%w: %s", ErrDupAddr, addr)
	}
	nic := &NIC{
		Addr:     addr,
		net:      n,
		upName:   "net.uplink:" + string(addr),
		downName: "net.downlink:" + string(addr),
	}
	n.nics[addr] = nic
	return nic, nil
}

// Detach removes a NIC (a host powering off). In-flight frames to the
// address are dropped at delivery.
func (n *Network) Detach(addr Addr) {
	if nic, ok := n.nics[addr]; ok {
		nic.recv = nil
		delete(n.nics, addr)
	}
}

// serTime is the serialization time of b bytes on one link.
func (n *Network) serTime(b int) sim.Duration { return n.cfg.SerTime(b) }

// switchForward queues the frame on the destination's output port.
// Fault rolls happen here, in arrival order, so an installed plan's
// injections replay identically for a given seed.
func (n *Network) switchForward(fe *frameEvent) {
	f := fe.f
	if n.plan.Roll(fault.Drop) {
		n.FaultDrops++
		if n.rec != nil {
			n.rec.Count("net", "fault_drops", 1)
		}
		n.dropFrame(fe)
		return
	}
	if n.outQueue[f.Dst] >= n.cfg.QueueFrames {
		n.Drops++
		if n.rec != nil {
			n.rec.Count("net", "queue_drops", 1)
		}
		n.dropFrame(fe)
		return
	}
	fe.arrive = n.eng.Now()
	n.outQueue[f.Dst]++
	// Forwarding latency is pipelined: it delays when a frame may start
	// on the output port but does not consume port bandwidth.
	ready := n.eng.Now().Add(n.cfg.SwitchLatency)
	start := n.outBusy[f.Dst]
	if start < ready {
		start = ready
	}
	ser := n.serTime(f.Bytes)
	n.outBusy[f.Dst] = start.Add(ser)
	deliver := n.outBusy[f.Dst].Add(n.cfg.PropDelay)
	fe.corrupt = n.plan.Roll(fault.Corrupt)
	if fe.corrupt {
		n.FaultCorrupts++
	}
	if n.plan.Roll(fault.Reorder) {
		// Slip this frame only: successors keep their port schedule, so
		// they overtake it in delivery order.
		n.FaultReorders++
		deliver = deliver.Add(n.plan.Delay(reorderSlipLo, reorderSlipHi))
	}
	n.Forwards++
	//hyperlint:allow(eventref) one-shot leg event: its own firing is the only thing that recycles fe, so there is no cancel window
	n.eng.At(deliver, fe.dst.downName, fe.downFn)
}

// dropFrame retires a frame that never reaches its receiver, releasing
// the network's reference on its wire buffer.
func (n *Network) dropFrame(fe *frameEvent) {
	if fe.f.Buf != nil {
		fe.f.Buf.Release()
	}
	n.putFrameEvent(fe)
}

// BaseRTT returns the minimum round trip for a small frame: twice
// (two links' serialization + two propagations + switch latency).
func (n *Network) BaseRTT() sim.Duration {
	oneWay := 2*n.cfg.PropDelay + n.cfg.SwitchLatency + 2*n.serTime(MinFrameBytes)
	return 2 * oneWay
}
