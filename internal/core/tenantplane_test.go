package core

import (
	"testing"

	"hyperion/internal/sim"
	"hyperion/internal/tenant"
)

// fig2Timeline drives n Figure 2 probes through a freshly booted DPU
// and returns each probe's completion time and stage breakdown.
func fig2Timeline(t *testing.T, n int, install bool) (times []sim.Time, traces []Fig2Trace) {
	t.Helper()
	eng, _, d := bootTest(t)
	if install {
		d.InstallTenantPlane(tenant.DefaultConfig())
	}
	if err := d.LoadAccelerator(0, ProbeBitstream(d.Cfg.AuthTag), nil); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	for i := 0; i < n; i++ {
		err := d.Fig2Probe(0, i%4, int64(i)*7, 1+i%4, func(tr Fig2Trace, _ []byte, perr error) {
			if perr != nil {
				t.Error(perr)
			}
			times = append(times, eng.Now())
			traces = append(traces, tr)
		})
		if err != nil {
			t.Fatal(err)
		}
		eng.Run()
	}
	return
}

func TestIdleTenantPlaneIsNeutral(t *testing.T) {
	// The chaos satellite's standing requirement: a DPU with the tenant
	// plane installed but no tenants admitted must be bit-identical to
	// a plain DPU — same probe completions at the same picoseconds.
	bt, btr := fig2Timeline(t, 8, false)
	wt, wtr := fig2Timeline(t, 8, true)
	if len(bt) != len(wt) {
		t.Fatalf("probe counts differ: %d vs %d", len(bt), len(wt))
	}
	for i := range bt {
		if bt[i] != wt[i] || btr[i] != wtr[i] {
			t.Fatalf("probe %d perturbed by idle tenant plane: t=%v/%v trace %+v vs %+v",
				i, bt[i], wt[i], btr[i], wtr[i])
		}
	}
}

func TestTenantPlaneOverDPUFabric(t *testing.T) {
	// The plane schedules over the DPU's own fabric: admit two tenants,
	// serve traffic, and verify slot bookkeeping through both views.
	eng, _, d := bootTest(t)
	ctl := d.InstallTenantPlane(tenant.DefaultConfig())
	if d.TenantPlane() != ctl {
		t.Fatal("TenantPlane accessor")
	}
	img := ProbeBitstream(d.Cfg.AuthTag)
	a, err := ctl.Admit(tenant.Spec{Name: "a", Weight: 2, Image: img})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if a.State != tenant.StateActive {
		t.Fatalf("tenant a: %v", a.State)
	}
	slot, _ := d.Fabric.Slot(a.Slot)
	if slot.Image != img {
		t.Fatal("tenant image not in DPU fabric slot")
	}
	var done int
	for i := 0; i < 4; i++ {
		if err := ctl.Submit(a.ID, i, 64, func(err error) {
			if err != nil {
				t.Error(err)
			}
			done++
		}); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	if done != 4 {
		t.Fatalf("completed %d of 4", done)
	}
	if err := ctl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
