package nvme

import (
	"bytes"
	"errors"
	"testing"

	"hyperion/internal/sim"
)

func newDev(t testing.TB) (*sim.Engine, *Device, *Host) {
	t.Helper()
	eng := sim.NewEngine(1)
	dev := New(eng, DefaultConfig("nvme0"))
	host := NewHost(dev, nil)
	return eng, dev, host
}

func TestWriteReadRoundTrip(t *testing.T) {
	eng, _, h := newDev(t)
	payload := bytes.Repeat([]byte{0xAB}, 4096*3)
	wrote := false
	if err := h.Write(0, 100, payload, func(st uint16) {
		if st != StatusOK {
			t.Errorf("write status %#x", st)
		}
		wrote = true
	}); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if !wrote {
		t.Fatal("write never completed")
	}
	var got []byte
	if err := h.Read(0, 100, 3, func(data []byte, st uint16) {
		if st != StatusOK {
			t.Errorf("read status %#x", st)
		}
		got = data
	}); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if !bytes.Equal(got, payload) {
		t.Fatal("read back wrong data")
	}
}

func TestUnwrittenBlocksReadZero(t *testing.T) {
	eng, _, h := newDev(t)
	var got []byte
	_ = h.Read(0, 999, 1, func(data []byte, st uint16) { got = data })
	eng.Run()
	if len(got) != 4096 {
		t.Fatalf("len = %d", len(got))
	}
	for _, b := range got {
		if b != 0 {
			t.Fatal("unwritten block not zero")
		}
	}
}

func TestReadLatencyShape(t *testing.T) {
	eng, dev, h := newDev(t)
	cfg := dev.Config()
	var doneAt sim.Time
	_ = h.Read(0, 0, 1, func([]byte, uint16) { doneAt = eng.Now() })
	eng.Run()
	want := cfg.CtrlOverhead + cfg.ReadLatency
	if doneAt.Sub(0) != sim.Duration(want) {
		t.Fatalf("single-block read = %v, want %v", doneAt.Sub(0), want)
	}
}

func TestChannelParallelism(t *testing.T) {
	// 8 single-block reads on 8 different channels should all finish at
	// the same time; 8 reads on the same channel serialize.
	eng, dev, h := newDev(t)
	cfg := dev.Config()
	var done []sim.Time
	for i := 0; i < cfg.Channels; i++ {
		_ = h.Read(0, int64(i), 1, func([]byte, uint16) { done = append(done, eng.Now()) })
	}
	eng.Run()
	for i := 1; i < len(done); i++ {
		if done[i] != done[0] {
			t.Fatalf("parallel channels finished at different times: %v vs %v", done[i], done[0])
		}
	}

	eng2 := sim.NewEngine(1)
	dev2 := New(eng2, DefaultConfig("nvme1"))
	h2 := NewHost(dev2, nil)
	var done2 []sim.Time
	for i := 0; i < 8; i++ {
		// Same channel: LBAs congruent mod Channels.
		_ = h2.Read(0, int64(i*cfg.Channels), 1, func([]byte, uint16) { done2 = append(done2, eng2.Now()) })
	}
	eng2.Run()
	gap := done2[7].Sub(done2[0])
	if gap < 7*cfg.ReadLatency {
		t.Fatalf("same-channel reads overlapped: spread %v, want ≥ %v", gap, 7*cfg.ReadLatency)
	}
}

func TestWriteFasterThanReadThenFlushWaits(t *testing.T) {
	eng, dev, h := newDev(t)
	cfg := dev.Config()
	var wAt, fAt sim.Time
	_ = h.Write(0, 0, make([]byte, 4096), func(uint16) { wAt = eng.Now() })
	_ = h.Flush(0, func(uint16) { fAt = eng.Now() })
	eng.Run()
	if wAt.Sub(0) >= sim.Duration(cfg.ReadLatency) {
		t.Fatalf("cached write took %v, want < read latency %v", wAt.Sub(0), cfg.ReadLatency)
	}
	if fAt < wAt {
		t.Fatal("flush completed before write")
	}
}

func TestLBARangeError(t *testing.T) {
	eng, dev, h := newDev(t)
	var st uint16
	_ = h.Read(0, dev.Config().Blocks-1, 4, func(_ []byte, s uint16) { st = s })
	eng.Run()
	if st != StatusLBARange {
		t.Fatalf("status = %#x, want LBA range error", st)
	}
}

func TestInvalidNamespace(t *testing.T) {
	eng, _, h := newDev(t)
	var st uint16
	_ = h.Submit(0, Command{Opcode: OpRead, NSID: 7, LBA: 0, Blocks: 1}, func(c Completion) { st = c.Status })
	eng.Run()
	if st != StatusInvalidNS {
		t.Fatalf("status = %#x, want invalid namespace", st)
	}
}

func TestInvalidOpcode(t *testing.T) {
	eng, _, h := newDev(t)
	var st uint16
	_ = h.Submit(0, Command{Opcode: 0x7F, NSID: 1}, func(c Completion) { st = c.Status })
	eng.Run()
	if st != StatusInvalidOp {
		t.Fatalf("status = %#x, want invalid opcode", st)
	}
}

func TestQueueDepthEnforced(t *testing.T) {
	eng := sim.NewEngine(1)
	cfg := DefaultConfig("small")
	cfg.QueueDepth = 4
	dev := New(eng, cfg)
	var sawFull bool
	for i := 0; i < 10; i++ {
		err := dev.Enqueue(0, Command{Opcode: OpRead, NSID: 1, LBA: int64(i), Blocks: 1})
		if errors.Is(err, ErrQueueFull) {
			sawFull = true
		}
	}
	if !sawFull {
		t.Fatal("queue depth not enforced")
	}
}

func TestBadQueue(t *testing.T) {
	_, dev, _ := newDev(t)
	if err := dev.Enqueue(99, Command{}); !errors.Is(err, ErrBadQueue) {
		t.Fatalf("err = %v, want ErrBadQueue", err)
	}
}

func TestShortWriteRejected(t *testing.T) {
	_, dev, h := newDev(t)
	err := dev.Enqueue(0, Command{Opcode: OpWrite, NSID: 1, LBA: 0, Blocks: 2, Data: make([]byte, 4096)})
	if !errors.Is(err, ErrShortWrite) {
		t.Fatalf("err = %v, want ErrShortWrite", err)
	}
	if err := h.Write(0, 0, make([]byte, 100), nil); !errors.Is(err, ErrShortWrite) {
		t.Fatalf("host err = %v, want ErrShortWrite", err)
	}
}

func TestMMIOReadReportsOccupancy(t *testing.T) {
	_, dev, _ := newDev(t)
	_ = dev.Enqueue(0, Command{Opcode: OpRead, NSID: 1, LBA: 0, Blocks: 1})
	if got := dev.MMIORead(0); got != 1 {
		t.Fatalf("occupancy = %d, want 1", got)
	}
	if got := dev.MMIORead(int64(len("x")) * 1 << 20); got != ^uint64(0) {
		t.Fatalf("bad offset read = %d, want all-ones", got)
	}
}

func TestDMAHookCharged(t *testing.T) {
	eng := sim.NewEngine(1)
	dev := New(eng, DefaultConfig("nvme0"))
	var dmaBytes int64
	dev.Bind(func(size int64, done func()) {
		dmaBytes += size
		eng.After(sim.Microsecond, "fakedma", done)
	}, nil)
	h := NewHost(dev, nil)
	_ = h.Write(0, 0, make([]byte, 8192), nil)
	eng.Run()
	var read bool
	_ = h.Read(0, 0, 2, func([]byte, uint16) { read = true })
	eng.Run()
	if !read {
		t.Fatal("read did not complete")
	}
	if dmaBytes != 16384 {
		t.Fatalf("dma bytes = %d, want 16384", dmaBytes)
	}
}

func TestStoredBlocksAccounting(t *testing.T) {
	eng, dev, h := newDev(t)
	_ = h.Write(0, 10, make([]byte, 4096*4), nil)
	_ = h.Write(0, 12, make([]byte, 4096*4), nil) // overlaps 2 blocks
	eng.Run()
	if got := dev.StoredBlocks(); got != 6 {
		t.Fatalf("StoredBlocks = %d, want 6", got)
	}
}

func BenchmarkRandomRead4K(b *testing.B) {
	eng := sim.NewEngine(1)
	dev := New(eng, DefaultConfig("bench"))
	h := NewHost(dev, nil)
	r := sim.NewRand(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = h.Read(0, int64(r.Intn(1<<20)), 1, func([]byte, uint16) {})
		if i%256 == 0 {
			eng.Run()
		}
	}
	eng.Run()
}
