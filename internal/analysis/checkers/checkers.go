// Package checkers registers the hyperlint analyzer suite. It exists
// as its own package so both cmd/hyperlint and tests can enumerate the
// suite without creating an import cycle with the framework.
package checkers

import (
	"fmt"

	"hyperion/internal/analysis"
	"hyperion/internal/analysis/bufown"
	"hyperion/internal/analysis/eventref"
	"hyperion/internal/analysis/maprange"
	"hyperion/internal/analysis/nodeterm"
	"hyperion/internal/analysis/sharedstate"
	"hyperion/internal/analysis/simtime"
	"hyperion/internal/analysis/spanpair"
	"hyperion/internal/analysis/unsafeptr"
)

// All returns the full hyperlint suite in stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		nodeterm.Analyzer,
		maprange.Analyzer,
		eventref.Analyzer,
		simtime.Analyzer,
		unsafeptr.Analyzer,
		bufown.Analyzer,
		spanpair.Analyzer,
		sharedstate.Analyzer,
	}
}

// Select returns the analyzers with the given names in suite order, or
// all of them when names is empty. Unknown names are an error so a
// typo in -checks cannot silently select nothing.
func Select(names []string) ([]*analysis.Analyzer, error) {
	if len(names) == 0 {
		return All(), nil
	}
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[n] = true
	}
	var out []*analysis.Analyzer
	for _, a := range All() {
		if want[a.Name] {
			out = append(out, a)
			delete(want, a.Name)
		}
	}
	if len(want) > 0 {
		for n := range want {
			return nil, fmt.Errorf("unknown analyzer %q", n)
		}
	}
	return out, nil
}
