// Package eventref enforces the EventRef discipline introduced with
// the generation-stamped event pool: scheduled events are referred to
// only through sim.EventRef value handles.
//
// The engine recycles event slots through a free list, so any channel
// back to a slot other than a generation-checked EventRef is a
// use-after-recycle bug waiting to happen. Concretely the analyzer
// bans, in model packages:
//
//   - pointers to EventRef (fields, params, variables, &ref): refs are
//     small values meant to be copied; aliasing one reintroduces
//     exactly the shared-mutable-handle problem the pool removed;
//   - comparing EventRefs with == or != — a hand-rolled generation
//     check. Use ref.Valid(), or just call Cancel: it is specified to
//     be a no-op on zero, fired, cancelled, and recycled refs;
//   - cancelling a stored ref (x.timer) without re-arming or resetting
//     it to sim.NoEvent in the same block, which leaves a stale handle
//     that later code may mistake for a live timer;
//   - storing At/After results in package-level variables: engines are
//     per-experiment and run concurrently in the parallel harness, so
//     global timer state corrupts whichever engine touches it second.
//
// The datapath pools its per-operation contexts (rpc's call/serveCtx,
// nvmeof's opCtx) on free lists with prebound callback fields, which
// opens two more recycle hazards the analyzer covers:
//
//   - pushing an object whose struct carries EventRef fields onto a
//     free list (the `x.fooFree = append(x.fooFree, obj)` idiom — any
//     slice whose name ends in "Free") without first resetting those
//     fields, either per-field or with a whole-struct `*obj = T{...}`
//     write: the recycled instance inherits a stale handle;
//   - discarding the EventRef returned by At/After when the callback
//     is prebound on a pooled instance (a method value or func-typed
//     field like op.retryFn): once the instance recycles, the pending
//     timer still fires into it, and without the ref nobody can
//     Cancel it first.
package eventref

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"hyperion/internal/analysis"
)

// Analyzer is the eventref pass.
var Analyzer = &analysis.Analyzer{
	Name: "eventref",
	Doc:  "enforces sim.EventRef handle discipline in model packages",
	Run:  run,
}

const simPath = analysis.ModulePath + "/internal/sim"

func run(pass *analysis.Pass) error {
	if pass.Layer != analysis.LayerModel || pass.Path == simPath {
		return nil
	}
	pooled := pooledStructs(pass)
	for _, f := range pass.NonTestFiles() {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkPooled(pass, fd.Body, pooled)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.StarExpr:
				if tv, ok := pass.TypesInfo.Types[n]; ok && tv.IsType() && isEventRefPtr(tv.Type) {
					pass.Reportf(n.Pos(), "*sim.EventRef: refs are value handles — copy and store them, never alias them through a pointer")
				}
			case *ast.UnaryExpr:
				if n.Op == token.AND && isEventRef(typeOf(pass, n.X)) {
					pass.Reportf(n.Pos(), "&<EventRef>: refs are value handles — copy and store them, never alias them through a pointer")
				}
			case *ast.BinaryExpr:
				if (n.Op == token.EQL || n.Op == token.NEQ) &&
					(isEventRef(typeOf(pass, n.X)) || isEventRef(typeOf(pass, n.Y))) {
					pass.Reportf(n.Pos(), "comparing EventRefs is a hand-rolled generation check: use ref.Valid(), or just Cancel — it is safe on stale refs")
				}
			case *ast.BlockStmt:
				checkCancelReset(pass, n.List)
			case *ast.CaseClause:
				checkCancelReset(pass, n.Body)
			case *ast.AssignStmt:
				checkGlobalStore(pass, n)
			}
			return true
		})
	}
	return nil
}

func typeOf(pass *analysis.Pass, e ast.Expr) types.Type {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok {
		return nil
	}
	return tv.Type
}

func isEventRef(t types.Type) bool {
	return t != nil && analysis.IsNamed(t, simPath, "EventRef")
}

func isEventRefPtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	return ok && isEventRef(p.Elem())
}

// engineMethod resolves a call to a *sim.Engine method of the given
// name, returning the argument expressions or nil.
func engineMethod(pass *analysis.Pass, call *ast.CallExpr, name string) []ast.Expr {
	fn := analysis.Callee(pass.TypesInfo, call)
	if fn == nil || fn.Name() != name || fn.Pkg() == nil || fn.Pkg().Path() != simPath {
		return nil
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return nil
	}
	return call.Args
}

// checkCancelReset walks a statement list looking for
// `eng.Cancel(x.sel)` on a *stored* ref (selector expression) that the
// remainder of the list neither resets to sim.NoEvent nor re-arms with
// a fresh At/After result. Locals passed to Cancel are exempt — they
// die with the scope.
func checkCancelReset(pass *analysis.Pass, stmts []ast.Stmt) {
	for i, st := range stmts {
		expr, ok := st.(*ast.ExprStmt)
		if !ok {
			continue
		}
		call, ok := analysis.Unparen(expr.X).(*ast.CallExpr)
		if !ok {
			continue
		}
		args := engineMethod(pass, call, "Cancel")
		if len(args) != 1 {
			continue
		}
		sel, ok := analysis.Unparen(args[0]).(*ast.SelectorExpr)
		if !ok || !isEventRef(typeOf(pass, sel)) {
			continue
		}
		path := analysis.ExprString(sel)
		if path == "" || resetLater(pass, stmts[i+1:], path) {
			continue
		}
		pass.Reportf(call.Pos(), "cancelled ref %s is left set: assign sim.NoEvent (or re-arm it) so Valid() and later Cancels stay meaningful", path)
	}
}

// resetLater reports whether any following statement assigns the same
// selector path — to sim.NoEvent, a fresh schedule, anything. Nested
// blocks count: a reset on one branch is taken as intent.
func resetLater(pass *analysis.Pass, stmts []ast.Stmt, path string) bool {
	found := false
	for _, st := range stmts {
		ast.Inspect(st, func(n ast.Node) bool {
			if found {
				return false
			}
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for _, lhs := range as.Lhs {
				if analysis.ExprString(lhs) == path {
					found = true
				}
			}
			return true
		})
	}
	return found
}

// pooledStructs collects the named struct types that cycle through a
// free list anywhere in the package: an `append(x, obj)` whose slice
// expression's name ends in "Free" (the repo's pooling idiom) marks
// obj's pointee type as pooled.
func pooledStructs(pass *analysis.Pass) map[*types.Named]bool {
	pooled := make(map[*types.Named]bool)
	for _, f := range pass.NonTestFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isFreeListAppend(pass, call) {
				return true
			}
			for _, arg := range call.Args[1:] {
				if named := pointeeStruct(typeOf(pass, arg)); named != nil {
					pooled[named] = true
				}
			}
			return true
		})
	}
	return pooled
}

// isFreeListAppend matches `append(<...Free>, obj...)`.
func isFreeListAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := analysis.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" || len(call.Args) < 2 {
		return false
	}
	if _, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok {
		return false
	}
	slicePath := analysis.ExprString(call.Args[0])
	return strings.HasSuffix(strings.ToLower(slicePath), "free")
}

// pointeeStruct returns the named struct behind a *T type, or nil.
func pointeeStruct(t types.Type) *types.Named {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return nil
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return nil
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return nil
	}
	return named
}

// eventRefFields returns the names of named's direct EventRef fields.
func eventRefFields(named *types.Named) []string {
	st := named.Underlying().(*types.Struct)
	var out []string
	for i := 0; i < st.NumFields(); i++ {
		if isEventRef(st.Field(i).Type()) {
			out = append(out, st.Field(i).Name())
		}
	}
	return out
}

// checkPooled enforces the two free-list recycle rules inside one
// function body: EventRef fields must be reset before an instance is
// pushed to a free list, and At/After results must not be discarded
// when the callback is prebound on a pooled instance.
func checkPooled(pass *analysis.Pass, body *ast.BlockStmt, pooled map[*types.Named]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if !isFreeListAppend(pass, n) {
				return true
			}
			for _, arg := range n.Args[1:] {
				named := pointeeStruct(typeOf(pass, arg))
				if named == nil {
					continue
				}
				objPath := analysis.ExprString(arg)
				if objPath == "" {
					continue
				}
				for _, field := range eventRefFields(named) {
					if !resetBefore(body, n.Pos(), objPath, field) {
						pass.Reportf(n.Pos(), "pooled %s is pushed to a free list with EventRef field %s unreset: assign sim.NoEvent (or reset the whole struct) so the recycled instance does not inherit a stale handle", objPath, field)
					}
				}
			}
		case *ast.ExprStmt:
			call, ok := analysis.Unparen(n.X).(*ast.CallExpr)
			if !ok {
				return true
			}
			name := "After"
			args := engineMethod(pass, call, "After")
			if args == nil {
				name = "At"
				args = engineMethod(pass, call, "At")
			}
			if len(args) != 3 {
				return true
			}
			cb, ok := analysis.Unparen(args[2]).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			named := pointeeStruct(typeOf(pass, cb.X))
			if named == nil || !pooled[named] {
				return true
			}
			pass.Reportf(call.Pos(), "EventRef from %s is discarded but its callback %s is prebound on pooled %s: store the ref so the timer can be cancelled before the instance recycles", name, analysis.ExprString(cb), named.Obj().Name())
		}
		return true
	})
}

// resetBefore reports whether any assignment lexically before pos in
// body writes objPath.field or the whole struct *objPath.
func resetBefore(body *ast.BlockStmt, pos token.Pos, objPath, field string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Pos() >= pos {
			return true
		}
		for _, lhs := range as.Lhs {
			lhs = analysis.Unparen(lhs)
			if se, ok := lhs.(*ast.StarExpr); ok {
				if analysis.ExprString(se.X) == objPath {
					found = true
				}
				continue
			}
			if analysis.ExprString(lhs) == objPath+"."+field {
				found = true
			}
		}
		return true
	})
	return found
}

// checkGlobalStore flags `globalVar = eng.After(...)` / At(...):
// package-level timer state breaks the one-engine-per-goroutine
// isolation the parallel experiment harness relies on.
func checkGlobalStore(pass *analysis.Pass, as *ast.AssignStmt) {
	for i, rhs := range as.Rhs {
		call, ok := analysis.Unparen(rhs).(*ast.CallExpr)
		if !ok {
			continue
		}
		if engineMethod(pass, call, "At") == nil && engineMethod(pass, call, "After") == nil {
			continue
		}
		if i >= len(as.Lhs) {
			continue
		}
		id, ok := analysis.Unparen(as.Lhs[i]).(*ast.Ident)
		if !ok {
			continue
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil {
			obj = pass.TypesInfo.Defs[id]
		}
		if v, ok := obj.(*types.Var); ok && v.Parent() == pass.Pkg.Scope() {
			pass.Reportf(as.Pos(), "EventRef stored in package-level var %s: engines run concurrently in the parallel harness; keep timer state per-engine", id.Name)
		}
	}
}
