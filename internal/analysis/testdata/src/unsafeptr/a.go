// Package unsafeptr is hyperlint golden-test input: model-layer code
// importing unsafe is flagged; internal/wire (not representable here)
// is the only sanctioned importer.
package unsafeptr

import "unsafe" // want `unsafe is confined to internal/wire`

func addrOf(p *int) uintptr { return uintptr(unsafe.Pointer(p)) }
