package rpc

import (
	"errors"
	"testing"

	"hyperion/internal/netsim"
	"hyperion/internal/sim"
	"hyperion/internal/transport"
)

func rig(t testing.TB, mode Mode) (*sim.Engine, *Server, *Client) {
	t.Helper()
	eng := sim.NewEngine(1)
	net := netsim.New(eng, netsim.DefaultConfig())
	sn, err := net.Attach("server")
	if err != nil {
		t.Fatal(err)
	}
	cn, err := net.Attach("client")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(eng, transport.New(eng, transport.RDMA, sn), mode)
	cli := NewClient(eng, transport.New(eng, transport.RDMA, cn))
	return eng, srv, cli
}

func TestCallRoundTrip(t *testing.T) {
	eng, srv, cli := rig(t, RunToCompletion)
	srv.Handle("echo", func(arg any, respond func(any, int, error)) {
		respond(arg, 64, nil)
	})
	var got any
	cli.Call("server", "echo", "hello", 64, func(val any, err error) {
		if err != nil {
			t.Error(err)
		}
		got = val
	})
	eng.Run()
	if got != "hello" {
		t.Fatalf("got %v", got)
	}
}

func TestNoMethod(t *testing.T) {
	eng, _, cli := rig(t, RunToCompletion)
	var got error
	cli.Call("server", "missing", nil, 64, func(val any, err error) { got = err })
	eng.Run()
	if !errors.Is(got, ErrRemote) {
		t.Fatalf("err = %v, want ErrRemote", got)
	}
}

func TestRemoteError(t *testing.T) {
	eng, srv, cli := rig(t, RunToCompletion)
	srv.Handle("fail", func(arg any, respond func(any, int, error)) {
		respond(nil, 0, errors.New("storage exploded"))
	})
	var got error
	cli.Call("server", "fail", nil, 64, func(val any, err error) { got = err })
	eng.Run()
	if got == nil || !errors.Is(got, ErrRemote) {
		t.Fatalf("err = %v", got)
	}
	if srv.Errors != 1 {
		t.Fatalf("server errors = %d", srv.Errors)
	}
}

func TestAsyncRespond(t *testing.T) {
	eng, srv, cli := rig(t, RunToCompletion)
	srv.Handle("slow", func(arg any, respond func(any, int, error)) {
		eng.After(70*sim.Microsecond, "storage", func() { respond(42, 64, nil) })
	})
	var got any
	var at sim.Time
	cli.Call("server", "slow", nil, 64, func(val any, err error) {
		got = val
		at = eng.Now()
	})
	eng.Run()
	if got != 42 {
		t.Fatalf("got %v", got)
	}
	if at.Sub(0) < 70*sim.Microsecond {
		t.Fatalf("completed at %v, before storage latency elapsed", at)
	}
}

func TestTimeout(t *testing.T) {
	eng, srv, cli := rig(t, RunToCompletion)
	srv.Handle("void", func(arg any, respond func(any, int, error)) {
		// never responds
	})
	cli.Timeout = 1 * sim.Millisecond
	var got error
	cli.Call("server", "void", nil, 64, func(val any, err error) { got = err })
	eng.Run()
	if !errors.Is(got, ErrTimeout) {
		t.Fatalf("err = %v", got)
	}
	if cli.Timeouts != 1 {
		t.Fatalf("timeouts = %d", cli.Timeouts)
	}
}

func TestManyConcurrentCalls(t *testing.T) {
	eng, srv, cli := rig(t, RunToCompletion)
	srv.Handle("inc", func(arg any, respond func(any, int, error)) {
		respond(arg.(int)+1, 64, nil)
	})
	results := map[int]bool{}
	for i := 0; i < 200; i++ {
		i := i
		cli.Call("server", "inc", i, 64, func(val any, err error) {
			if err != nil {
				t.Error(err)
				return
			}
			if val.(int) != i+1 {
				t.Errorf("inc(%d) = %v", i, val)
			}
			results[i] = true
		})
	}
	eng.Run()
	if len(results) != 200 {
		t.Fatalf("completed %d/200", len(results))
	}
}

func TestQueuedModeSerializes(t *testing.T) {
	// Queued mode must process one request at a time with dispatch
	// overhead; run-to-completion responds faster for the same load.
	latency := func(mode Mode) sim.Duration {
		eng, srv, cli := rig(t, mode)
		srv.Handle("op", func(arg any, respond func(any, int, error)) {
			respond(1, 64, nil)
		})
		var last sim.Time
		n := 0
		for i := 0; i < 50; i++ {
			cli.Call("server", "op", nil, 64, func(val any, err error) {
				n++
				last = eng.Now()
			})
		}
		eng.Run()
		if n != 50 {
			t.Fatalf("completed %d/50", n)
		}
		return last.Sub(0)
	}
	rtc, queued := latency(RunToCompletion), latency(Queued)
	if rtc >= queued {
		t.Fatalf("run-to-completion %v not faster than queued %v", rtc, queued)
	}
}

func BenchmarkCall(b *testing.B) {
	eng, srv, cli := rig(b, RunToCompletion)
	srv.Handle("nop", func(arg any, respond func(any, int, error)) { respond(nil, 64, nil) })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cli.Call("server", "nop", nil, 64, func(any, error) {})
		if i%64 == 0 {
			eng.Run()
		}
	}
	eng.Run()
}
