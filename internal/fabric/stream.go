package fabric

import (
	"errors"
	"fmt"

	"hyperion/internal/fault"
	"hyperion/internal/sim"
	"hyperion/internal/telemetry"
)

// ErrStreamFull is returned by Stream.Push when the FIFO is at capacity
// (AXIS backpressure: TREADY deasserted).
var ErrStreamFull = errors.New("fabric: stream FIFO full")

// Item is one unit travelling on an AXI-Stream: an opaque payload plus
// its wire size, which determines how many bus beats it occupies. Span
// carries the request-scoped trace context alongside the payload.
type Item struct {
	Payload any
	Bytes   int
	Span    telemetry.RequestID
}

// Stream models an AXI-Stream channel: a fixed-width bus clocked at the
// fabric frequency, with a FIFO of bounded depth and a single downstream
// sink. Items are delivered in order; each item occupies
// ceil(Bytes/WidthBytes) beats of exclusive bus time.
type Stream struct {
	Name       string
	WidthBytes int // bus width per beat, e.g. 64 for 512-bit AXIS
	DepthItems int // FIFO capacity in items

	eng      *sim.Engine
	period   sim.Duration // one beat
	sink     func(Item)
	beatName string // precomputed event name
	beatFn   func() // prebound deliver, reads the queue head at fire time
	// queue is a head-indexed FIFO: pops advance head, the backing
	// array recycles once drained, so steady traffic stops allocating.
	queue      []Item
	head       int
	busy       bool
	plan       *fault.Plan
	rec        *telemetry.Recorder
	dropName   string     // armed only: precomputed drop-counter name
	pushAt     []sim.Time // armed only: enqueue time per queued item
	Pushed     int64
	Dropped    int64 // backpressure drops (FIFO full)
	FaultDrops int64 // injected drops (item consumed bus beats, then discarded)
	Bytes      int64
}

// NewStream creates a stream clocked at clockHz.
func NewStream(eng *sim.Engine, name string, clockHz int64, widthBytes, depthItems int) *Stream {
	if widthBytes <= 0 || depthItems <= 0 || clockHz <= 0 {
		panic("fabric: invalid stream parameters")
	}
	s := &Stream{
		Name:       name,
		WidthBytes: widthBytes,
		DepthItems: depthItems,
		eng:        eng,
		period:     sim.Duration(int64(sim.Second) / clockHz),
		beatName:   "stream:" + name,
	}
	s.beatFn = s.deliver
	return s
}

// Connect sets the downstream sink. It must be called before Push.
func (s *Stream) Connect(sink func(Item)) { s.sink = sink }

// SetFaultPlan installs a fault plan consulted once per delivered item
// (kind Drop: the item occupies its bus beats, then is discarded before
// the sink — a parity-error squash at the AXIS boundary). A nil or
// zero-rate plan leaves delivery bit-identical to an unhooked stream.
func (s *Stream) SetFaultPlan(p *fault.Plan) { s.plan = p }

// SetRecorder arms the telemetry plane: one span per delivered item
// covering enqueue to sink handoff (FIFO wait + bus beats), named
// after the stream. Disarmed (nil, the default) the hooks are pure
// nil checks and delivery stays bit-identical.
func (s *Stream) SetRecorder(rec *telemetry.Recorder) {
	s.rec = rec
	if rec != nil {
		s.dropName = "drop:" + s.Name
	}
}

// Len returns the current FIFO occupancy.
func (s *Stream) Len() int { return len(s.queue) - s.head }

// Push enqueues an item, or returns ErrStreamFull under backpressure.
func (s *Stream) Push(it Item) error {
	if s.sink == nil {
		panic(fmt.Sprintf("fabric: stream %q pushed before Connect", s.Name))
	}
	if it.Bytes <= 0 {
		it.Bytes = 1
	}
	if s.Len() >= s.DepthItems {
		s.Dropped++
		return ErrStreamFull
	}
	s.queue = append(s.queue, it)
	if s.rec != nil {
		s.pushAt = append(s.pushAt, s.eng.Now())
	}
	s.Pushed++
	s.Bytes += int64(it.Bytes)
	if !s.busy {
		s.busy = true
		s.deliverNext()
	}
	return nil
}

// deliverNext schedules the bus occupancy of the queue head. The beat
// event carries no closure state: only deliver pops, so the head it
// reads at fire time is the item whose beats were just charged.
func (s *Stream) deliverNext() {
	if s.Len() == 0 {
		s.busy = false
		if s.head > 0 {
			s.queue = s.queue[:0]
			s.head = 0
		}
		return
	}
	it := s.queue[s.head]
	beats := (it.Bytes + s.WidthBytes - 1) / s.WidthBytes
	if beats < 1 {
		beats = 1
	}
	s.eng.After(sim.Duration(beats)*s.period, s.beatName, s.beatFn)
}

func (s *Stream) deliver() {
	it := s.queue[s.head]
	s.queue[s.head] = Item{}
	s.head++
	// The enqueue-time shadow queue exists only while armed; if the
	// recorder was installed mid-flight it may briefly run short.
	t0 := s.eng.Now()
	if s.rec != nil && len(s.pushAt) > 0 {
		t0 = s.pushAt[0]
		s.pushAt = s.pushAt[1:]
	}
	if s.plan.Roll(fault.Drop) {
		s.FaultDrops++
		if s.rec != nil {
			s.rec.Count("stream", s.dropName, 1)
		}
	} else {
		if s.rec != nil {
			sp := s.rec.Begin("stream", s.Name, it.Span, t0)
			sp.End(s.eng.Now())
		}
		s.sink(it)
	}
	s.deliverNext()
}

// Arbiter merges N input streams onto one output in round-robin order —
// the "AXIS Arbiter" boxes in Figure 2. Inputs are created by In(i); each
// is a full Stream with its own FIFO, so per-tenant backpressure is
// isolated.
type Arbiter struct {
	Name string
	out  func(Item)
	ins  []*Stream
}

// NewArbiter creates an arbiter with n input streams feeding sink out.
func NewArbiter(eng *sim.Engine, name string, clockHz int64, widthBytes, depthItems, n int, out func(Item)) *Arbiter {
	a := &Arbiter{Name: name, out: out}
	for i := 0; i < n; i++ {
		st := NewStream(eng, fmt.Sprintf("%s.in%d", name, i), clockHz, widthBytes, depthItems)
		st.Connect(out)
		a.ins = append(a.ins, st)
	}
	return a
}

// In returns input port i.
func (a *Arbiter) In(i int) *Stream { return a.ins[i] }

// SetRecorder arms telemetry on every input stream of the arbiter.
func (a *Arbiter) SetRecorder(rec *telemetry.Recorder) {
	for _, st := range a.ins {
		st.SetRecorder(rec)
	}
}

// Inputs returns the number of input ports.
func (a *Arbiter) Inputs() int { return len(a.ins) }

// Demux routes items from one input to one of N output sinks using a
// classifier — the "DEMUX" box behind the QSFP ports in Figure 2.
type Demux struct {
	Name     string
	classify func(Item) int
	outs     []func(Item)
	Missed   int64
}

// NewDemux creates a demux with the given classifier and outputs. A
// classifier result outside [0, len(outs)) drops the item and counts it
// in Missed.
func NewDemux(name string, classify func(Item) int, outs ...func(Item)) *Demux {
	return &Demux{Name: name, classify: classify, outs: outs}
}

// Push classifies and forwards one item.
func (d *Demux) Push(it Item) {
	i := d.classify(it)
	if i < 0 || i >= len(d.outs) {
		d.Missed++
		return
	}
	d.outs[i](it)
}

// Mux merges pushes from many producers into one sink without modeling
// extra serialization (the serialization happens on the downstream
// Stream). It exists so topology code reads like Figure 2.
type Mux struct {
	Name string
	out  func(Item)
}

// NewMux creates a mux feeding out.
func NewMux(name string, out func(Item)) *Mux { return &Mux{Name: name, out: out} }

// Push forwards one item.
func (m *Mux) Push(it Item) { m.out(it) }
