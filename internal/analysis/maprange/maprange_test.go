package maprange_test

import (
	"testing"

	"hyperion/internal/analysis/analysistest"
	"hyperion/internal/analysis/maprange"
)

func TestMaprange(t *testing.T) {
	analysistest.Run(t, "../testdata", maprange.Analyzer,
		"maprange", "maprange_harness")
}
