package trace

import (
	"testing"
)

func TestYCSBMixRatios(t *testing.T) {
	cases := []struct {
		mix            YCSBMix
		readLo, readHi int
	}{
		{YCSBA, 45, 55},
		{YCSBB, 92, 98},
		{YCSBC, 100, 100},
	}
	for _, c := range cases {
		g := NewKVGen(1, 10000, c.mix, 100)
		reads := 0
		const n = 20000
		for i := 0; i < n; i++ {
			if g.Next().Kind == 'r' {
				reads++
			}
		}
		pct := reads * 100 / n
		if pct < c.readLo || pct > c.readHi {
			t.Errorf("%v: read pct = %d, want [%d,%d]", c.mix, pct, c.readLo, c.readHi)
		}
	}
}

func TestKVGenSkew(t *testing.T) {
	g := NewKVGen(2, 1000, YCSBC, 64)
	counts := map[string]int{}
	for i := 0; i < 50000; i++ {
		counts[string(g.Next().Key)]++
	}
	hot := counts[string(Key(0))]
	if hot < 1000 {
		t.Fatalf("hottest key only %d/50000 accesses; zipf broken", hot)
	}
}

func TestValueDeterministic(t *testing.T) {
	g := NewKVGen(3, 100, YCSBA, 64)
	a, b := g.Value(7), g.Value(7)
	if string(a) != string(b) || len(a) != 64 {
		t.Fatal("values not deterministic or wrong size")
	}
}

func TestPacketMarshalRoundTrip(t *testing.T) {
	p := Packet{SrcIP: 0x0a010203, DstIP: 0xC0A80001, SrcPort: 3456, DstPort: 22,
		Proto: 6, Flags: 0x12, Bytes: 1000, AuthFail: true}
	q := UnmarshalPacket(p.Marshal())
	if q != p {
		t.Fatalf("roundtrip %+v != %+v", q, p)
	}
}

func TestAttackGenMixesAttackers(t *testing.T) {
	g := NewAttackGen(4, 10)
	attackerSet := map[uint32]bool{}
	for _, a := range g.Attackers() {
		attackerSet[a] = true
	}
	attackPkts, failPkts := 0, 0
	const n = 10000
	for i := 0; i < n; i++ {
		p := g.Next()
		if attackerSet[p.SrcIP] {
			attackPkts++
			if p.AuthFail {
				failPkts++
			}
		}
	}
	if attackPkts < n/5 || attackPkts > n/2 {
		t.Fatalf("attack packets = %d/%d", attackPkts, n)
	}
	if failPkts*10 < attackPkts*8 {
		t.Fatalf("attacker auth failures = %d of %d", failPkts, attackPkts)
	}
}

func TestConnGenLifecycle(t *testing.T) {
	g := NewConnGen(5)
	syn, fin, data := 0, 0, 0
	for i := 0; i < 10000; i++ {
		p := g.Next()
		switch p.Flags {
		case 0x02:
			syn++
		case 0x01:
			fin++
		default:
			data++
		}
	}
	if syn == 0 || fin == 0 || data == 0 {
		t.Fatalf("mix syn=%d fin=%d data=%d", syn, fin, data)
	}
	if fin > syn {
		t.Fatal("closed more connections than opened")
	}
	if g.Open() != syn-fin {
		t.Fatalf("open = %d, want %d", g.Open(), syn-fin)
	}
}
