// Package wire is Hyperion's zero-copy buffer plane: pooled,
// refcounted byte buffers (Buf) and fixed-array big-/little-endian
// field types for wire-format encode/decode.
//
// The paper's thesis is that a CPU-free datapath wins by eliminating
// copies and per-request CPU touches; the simulator's own hot path
// follows the same discipline. Frames, fragments, RPC envelopes and
// NVMe-oF capsules carry a *Buf owned by a free-list pool instead of
// per-hop []byte copies, and headers are decoded in place with the
// fixed-array types below.
//
// # Ownership
//
// A Buf is born from Pool.Get with one reference, owned by the caller.
// Handing a Buf to another layer transfers that reference unless the
// API says otherwise; a layer that wants to keep the bytes past the
// hand-off must Retain before passing it on and Release when done.
// Release of the last reference returns the Buf to its pool; the pool
// zeroes payload bytes on reuse so a stale reference can never observe
// another message's data. See DESIGN.md §10 for the per-layer rules.
//
// Pools are plain LIFO free lists — deliberately not sync.Pool, whose
// emptying is scheduler- and GC-dependent and would make model-code
// allocation behaviour nondeterministic.
//
// # Endianness
//
// The BE*/LE* types decode with a single unsafe load (plus a register
// byte swap for BE) on little-endian hosts. Build with -tags wiresafe
// for a portable encoding/binary fallback; without it, package init
// refuses to run on a big-endian host rather than decode garbage.
package wire

// Buf is a pooled, refcounted byte buffer. The zero value is not
// usable; obtain Bufs from a Pool.
type Buf struct {
	b    []byte
	refs int32
	pool *Pool
}

// Bytes returns the buffer's contents. The slice is valid until the
// last reference is released; callers must not retain it past Release.
func (b *Buf) Bytes() []byte { return b.b }

// Len returns the current length.
func (b *Buf) Len() int { return len(b.b) }

// Resize sets the length to n, growing capacity if needed. New bytes
// beyond the previous length are zero.
func (b *Buf) Resize(n int) {
	if n <= cap(b.b) {
		old := len(b.b)
		b.b = b.b[:n]
		for i := old; i < n; i++ {
			b.b[i] = 0
		}
		return
	}
	nb := make([]byte, n)
	copy(nb, b.b)
	b.b = nb
}

// Append appends p and returns the new length.
func (b *Buf) Append(p []byte) int {
	b.b = append(b.b, p...)
	return len(b.b)
}

// Retain adds a reference and returns b for chaining. The extra
// reference is the caller's to discharge.
//
//wire:owns
func (b *Buf) Retain() *Buf {
	if b.refs <= 0 {
		panic("wire: Retain on released Buf")
	}
	b.refs++
	return b
}

// Refs returns the current reference count (for tests and invariants).
func (b *Buf) Refs() int { return int(b.refs) }

// Release drops one reference; the last release returns the Buf to its
// pool. Releasing more times than retained panics — a double release
// is always an ownership bug.
func (b *Buf) Release() {
	if b.refs <= 0 {
		panic("wire: Release of already-released Buf")
	}
	b.refs--
	if b.refs == 0 {
		b.pool.put(b)
	}
}

// Pool is a deterministic free-list pool of Bufs. Not safe for
// concurrent use — the simulator is single-threaded by construction.
type Pool struct {
	free []*Buf
	cap  int // initial capacity of newly minted Bufs

	Gets, News int64 // Gets counts all Get calls; News the pool misses
}

// NewPool creates a pool whose fresh Bufs start with bufCap capacity.
func NewPool(bufCap int) *Pool {
	if bufCap <= 0 {
		bufCap = 64
	}
	return &Pool{cap: bufCap}
}

// Get returns a Buf of length n with one reference. Its bytes are
// zero, whether fresh or recycled, so no caller can observe a previous
// message's payload.
//
//wire:owns
func (p *Pool) Get(n int) *Buf {
	p.Gets++
	if len(p.free) == 0 {
		p.News++
		c := p.cap
		if c < n {
			c = n
		}
		return &Buf{b: make([]byte, n, c), refs: 1, pool: p}
	}
	b := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	b.refs = 1
	if cap(b.b) < n {
		b.b = make([]byte, n)
		return b
	}
	b.b = b.b[:n]
	clear(b.b)
	return b
}

// Free returns the number of Bufs currently on the free list.
func (p *Pool) Free() int { return len(p.free) }

func (p *Pool) put(b *Buf) {
	b.b = b.b[:cap(b.b)] // keep capacity; Get re-trims and zeroes
	p.free = append(p.free, b)
}
