//go:build !wiresafe

package wire

import "testing"

// The unsafe decode path is only correct on little-endian hosts; these
// tests pin the fail-loudly contract the build relies on.

func TestHostIsLittleEndian(t *testing.T) {
	// If this fails the init guard should already have panicked; it
	// documents the supported host set for the unsafe build.
	if !hostLittleEndian() {
		t.Fatal("unsafe build running on a big-endian host; init guard failed to fire")
	}
}

func TestMustLittleEndianPanicsOnBigEndian(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mustLittleEndian(false) did not panic: a big-endian host would silently decode swapped values")
		}
	}()
	mustLittleEndian(false)
}
