// Command benchctl runs the paper-reproduction experiments and prints
// the regenerated tables and figures.
//
// Usage:
//
//	benchctl list                    # show available experiments
//	benchctl all                     # run everything (EXPERIMENTS.md content)
//	benchctl -parallel 4 all         # fan experiments out over 4 goroutines
//	benchctl -json out.json all      # also write machine-readable results
//	benchctl -compare old.json all   # diff wall/allocs/hashes vs a prior report
//	benchctl -trace out/ fig2        # run traced; write Perfetto JSON + summaries
//	benchctl -shards 4 all           # run cluster-capable experiments on 4 shards
//	benchctl -shardsweep 1,2,4,8 all # measure E17 scaling across shard counts
//	benchctl table1                  # run one, by name or id (E1..E14)
//
// Parallel runs are deterministic: every experiment owns a private
// sim.Engine, so -parallel changes wall time only, never the tables.
// Likewise -shards: experiment tables are shard-count invariant, so
// the flag moves wall time and per-shard stats, never a single cell.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"hyperion/internal/bench"
)

func main() {
	parallel := flag.Int("parallel", 1, "run 'all' across N goroutines, capped at GOMAXPROCS (each experiment keeps its own engine)")
	jsonPath := flag.String("json", "", "with 'all': write machine-readable per-experiment results to this file")
	comparePath := flag.String("compare", "", "with 'all': diff results against this prior BENCH_*.json; exit 1 on any table-hash mismatch")
	tracePath := flag.String("trace", "", "run traced experiments with the telemetry plane armed and write <id>.trace.json/.hist.txt/.critpath.txt to this existing directory")
	shards := flag.Int("shards", 0, "run cluster-capable experiments (E17, E18) on N sim.Cluster shards; 0 keeps each experiment's default")
	sweepSpec := flag.String("shardsweep", "", "with 'all': comma-separated shard counts (e.g. 1,2,4,8); rerun E17 at each and record events/sec scaling in the JSON report")
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) < 1 {
		usage()
		os.Exit(2)
	}
	if *tracePath != "" {
		st, err := os.Stat(*tracePath)
		if err != nil || !st.IsDir() {
			fmt.Fprintf(os.Stderr, "benchctl: -trace %s: not a directory\n", *tracePath)
			os.Exit(1)
		}
	}
	switch args[0] {
	case "list":
		for _, e := range bench.All() {
			fmt.Printf("  %-4s %s\n", e.ID, e.Name)
		}
	case "all":
		workers := *parallel
		if max := runtime.GOMAXPROCS(0); workers > max {
			// More workers than cores cannot overlap any compute and only
			// add GC contention; cap silently.
			workers = max
		}
		start := time.Now() //hyperlint:allow(nodeterm) total-wall measurement for the JSON report; never feeds model time
		outs := bench.RunAllShards(workers, *shards)
		wall := time.Since(start) //hyperlint:allow(nodeterm) total-wall measurement for the JSON report; never feeds model time
		for _, o := range outs {
			fmt.Println(o.Result.String())
		}
		rep := bench.MakeReport(workers, wall, outs)
		if *sweepSpec != "" {
			runShardSweep(*sweepSpec, &rep)
		}
		if *jsonPath != "" {
			if err := bench.WriteReport(*jsonPath, rep); err != nil {
				fmt.Fprintf(os.Stderr, "benchctl: writing %s: %v\n", *jsonPath, err)
				os.Exit(1)
			}
		}
		if *comparePath != "" {
			old, err := bench.ReadJSON(*comparePath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchctl: reading %s: %v\n", *comparePath, err)
				os.Exit(1)
			}
			cmp := bench.Compare(old, rep)
			fmt.Print(cmp.String())
			if cmp.HashMismatches > 0 {
				os.Exit(1)
			}
		}
		if *tracePath != "" {
			for _, e := range bench.All() {
				if e.RunTraced != nil {
					traceOne(e, *tracePath)
				}
			}
		}
	default:
		for _, name := range args {
			e, ok := bench.ByName(name)
			if !ok {
				fmt.Fprintf(os.Stderr, "benchctl: unknown experiment %q (try 'benchctl list')\n", name)
				os.Exit(1)
			}
			if *tracePath != "" && e.RunTraced != nil {
				traceOne(e, *tracePath)
				continue
			}
			if *tracePath != "" {
				fmt.Fprintf(os.Stderr, "benchctl: %s has no traced form; running untraced\n", e.ID)
			}
			fmt.Println(e.RunAt(*shards).String())
		}
	}
}

// runShardSweep reruns E17 at each requested shard count, prints the
// scaling table, and attaches the points to the report's E17 record.
// Two events/sec figures are printed: wall (what this host delivered —
// flat when the host has fewer cores than shards) and busy (events
// over the busiest shard's execution time — the kernel's critical
// path, which wall converges to given one core per shard).
func runShardSweep(spec string, rep *bench.Report) {
	var counts []int
	for _, f := range strings.Split(spec, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "benchctl: -shardsweep %q: bad shard count %q\n", spec, f)
			os.Exit(2)
		}
		counts = append(counts, n)
	}
	pts := bench.RackSweep(bench.DefaultSeed, counts)
	fmt.Printf("E17 shard sweep (host: %d CPUs):\n", runtime.NumCPU())
	fmt.Printf("  %6s %9s %8s %9s %12s %8s %12s %8s\n",
		"shards", "events", "wall ms", "stall ms", "wall ev/s", "speedup", "busy ev/s", "speedup")
	for _, p := range pts {
		fmt.Printf("  %6d %9d %8.1f %9.1f %12.0f %7.2fx %12.0f %7.2fx\n",
			p.Shards, p.Events, p.WallMS, p.StallMS,
			p.EventsPerSec, p.EventsPerSec/pts[0].EventsPerSec,
			p.BusyEventsPerSec, p.BusyEventsPerSec/pts[0].BusyEventsPerSec)
	}
	for i := range rep.Results {
		if rep.Results[i].ID == "E17" {
			rep.Results[i].ShardSweep = pts
		}
	}
}

// traceOne runs one experiment with tracing armed at the default seed,
// prints its (golden-identical) table, and writes the trace artifacts.
func traceOne(e bench.Experiment, dir string) {
	res, rec, _ := bench.RunTracedExperiment(e, bench.DefaultSeed)
	fmt.Println(res.String())
	a, err := bench.WriteTraceArtifacts(dir, e.ID, rec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchctl: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("trace artifacts: %s %s %s\n", a.TraceJSON, a.HistTXT, a.CritTXT)
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: benchctl [-parallel N] [-shards N] [-shardsweep 1,2,4,8] [-json path] [-compare old.json] [-trace dir] list | all | <experiment>...")
}
