// Middlebox example: the two §2.4 network-middleware workloads running
// together on one DPU — a fail2ban filter in a fabric slot banning
// brute-force attackers, feeding surviving traffic into a Tiara-style
// L4 load balancer whose connection table spills to the attached SSDs
// when DRAM fills. Traffic-flow-proportional state lives on the card's
// own flash, not on a remote x86 helper.
package main

import (
	"fmt"
	"log"

	"hyperion/internal/apps/fail2ban"
	"hyperion/internal/apps/lb"
	"hyperion/internal/core"
	"hyperion/internal/netsim"
	"hyperion/internal/seg"
	"hyperion/internal/sim"
	"hyperion/internal/trace"
)

func main() {
	eng := sim.NewEngine(99)
	net := netsim.New(eng, netsim.DefaultConfig())
	dpu, _, err := core.Boot(eng, net, core.DefaultConfig("mbox"))
	if err != nil {
		log.Fatal(err)
	}

	// Stage 1: fail2ban in slot 0 (verified eBPF, bans after 4
	// failures, ban log persisted to NVMe).
	filter, err := fail2ban.Deploy(dpu, 0, 4, nil)
	if err != nil {
		log.Fatal(err)
	}
	eng.Run()

	// Stage 2: load balancer with a deliberately small hot table so the
	// SSD spill path is visible.
	balancer, err := lb.New(dpu.View, seg.OID(0x1B, 0),
		[]lb.Backend{{Addr: 0x0A000001}, {Addr: 0x0A000002}, {Addr: 0x0A000003}}, 512)
	if err != nil {
		log.Fatal(err)
	}

	// Mixed traffic: attack trace interleaved with legitimate
	// connections.
	attack := trace.NewAttackGen(5, 12)
	conns := trace.NewConnGen(6)
	steered, blocked := 0, 0
	const packets = 30000
	for i := 0; i < packets; i++ {
		var p trace.Packet
		if i%3 == 0 {
			p = attack.Next()
		} else {
			p = conns.Next()
		}
		err := filter.Process(p, func(verdict int) {
			if verdict != fail2ban.VerdictPass {
				blocked++
				return
			}
			if dst, err := balancer.Steer(p); err == nil && dst != 0 {
				steered++
			}
		})
		if err != nil {
			log.Fatal(err)
		}
		if i%1024 == 0 {
			eng.Run()
		}
	}
	eng.Run()

	fmt.Printf("packets: %d total, %d blocked by fail2ban, %d steered to backends\n",
		packets, blocked, steered)
	fmt.Printf("fail2ban: %d sources banned (persisted to the NVMe ban log)\n", filter.Banned)
	fmt.Printf("balancer: %d conns opened, hot table %d/%d, %d spilled to SSD, %d spill hits\n",
		balancer.NewConns, balancer.HotLen(), 512, balancer.Spills, balancer.SpillHits)
	filter.BannedSources(func(srcs []uint32, err error) {
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("ban log readback: %d records\n", len(srcs))
	})
	eng.Run()
}
