// Package seg implements Hyperion's single-level, segmentation-based
// unified storage-memory model (§2.1 of the paper, inspired by
// Twizzler/AS400/EROS): 128-bit object identifiers resolve through a
// segment translation table to either FPGA DRAM or NVMe bus addresses.
// Translation is object-granular — coarser than page-granular virtual
// memory — and the table itself is periodically persisted to a reserved
// control area on NVMe so the store recovers after power loss.
package seg

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ObjectID is a 128-bit object identifier.
type ObjectID struct {
	Hi, Lo uint64
}

// String renders the id as 32 hex digits.
func (id ObjectID) String() string { return fmt.Sprintf("%016x%016x", id.Hi, id.Lo) }

// IsZero reports whether the id is the zero id (never a valid object).
func (id ObjectID) IsZero() bool { return id.Hi == 0 && id.Lo == 0 }

// Less orders ids lexicographically.
func (id ObjectID) Less(other ObjectID) bool {
	if id.Hi != other.Hi {
		return id.Hi < other.Hi
	}
	return id.Lo < other.Lo
}

// ParseObjectID parses a 32-hex-digit id.
func ParseObjectID(s string) (ObjectID, error) {
	if len(s) != 32 {
		return ObjectID{}, errors.New("seg: object id must be 32 hex digits")
	}
	var id ObjectID
	if _, err := fmt.Sscanf(s[:16], "%016x", &id.Hi); err != nil {
		return ObjectID{}, fmt.Errorf("seg: bad object id: %v", err)
	}
	if _, err := fmt.Sscanf(s[16:], "%016x", &id.Lo); err != nil {
		return ObjectID{}, fmt.Errorf("seg: bad object id: %v", err)
	}
	return id, nil
}

// OID is shorthand for building ids in code and tests.
func OID(hi, lo uint64) ObjectID { return ObjectID{Hi: hi, Lo: lo} }

// EncodeTo writes the id's 16-byte little-endian form into b.
func (id ObjectID) EncodeTo(b []byte) {
	binary.LittleEndian.PutUint64(b, id.Hi)
	binary.LittleEndian.PutUint64(b[8:], id.Lo)
}

// DecodeID reads a 16-byte little-endian id from b.
func DecodeID(b []byte) ObjectID {
	return ObjectID{Hi: binary.LittleEndian.Uint64(b), Lo: binary.LittleEndian.Uint64(b[8:])}
}
