package tenant

import (
	"fmt"
	"testing"

	"hyperion/internal/fabric"
	"hyperion/internal/sim"
)

// The scheduler property sweep: seeded random tapes of
// arrive/depart/advance/submit operations drive the controller, and
// after every operation the conservation, exclusivity, and
// fabric-agreement invariants must hold. On failure the tape is shrunk
// by prefix replay — the runner is a pure function of (seed, nops), so
// replaying with a smaller nops reproduces the exact prefix — and the
// minimal failing prefix is reported op by op.

// tapeResult carries what a tape run observed.
type tapeResult struct {
	ops      []string // rendered tape, one line per op
	accepted int      // Submit calls that returned nil
	resolved int      // done callbacks fired
	failErr  error    // first invariant violation (nil if clean)
	failOp   int      // op index at which it tripped
}

// runTape executes the first nops operations of the tape derived from
// seed. Everything — op choice, specs, timings — is drawn from one
// sim.Rand, so (seed, nops) fully determines the run.
func runTape(seed uint64, nops int) tapeResult {
	eng := sim.NewEngine(seed)
	fab := fabric.New(eng, fabric.DefaultConfig(), "tag")
	cfg := DefaultConfig()
	cfg.MaxTenants = 10
	cfg.DepthItems = 16
	rng := sim.NewRand(seed)
	if rng.Intn(2) == 1 {
		cfg.Lease = 300 * sim.Microsecond
	}
	c := New(eng, fab, cfg)
	res := tapeResult{failOp: -1}
	var live []int
	nextName := 0
	record := func(format string, args ...any) {
		res.ops = append(res.ops, fmt.Sprintf(format, args...))
	}
	for i := 0; i < nops; i++ {
		switch rng.Intn(5) {
		case 0, 1: // arrive (weighted: churn needs arrivals)
			spec := Spec{
				Name:   fmt.Sprintf("t%03d", nextName),
				Weight: 1 + rng.Intn(8),
				Image:  testImage(fmt.Sprintf("img%03d", nextName), 1+int64(rng.Intn(4))),
			}
			nextName++
			tn, err := c.Admit(spec)
			record("arrive %s w=%d -> %v", spec.Name, spec.Weight, err)
			if err == nil {
				live = append(live, tn.ID)
			}
		case 2: // depart a random live tenant
			if len(live) == 0 {
				record("depart (none live)")
				continue
			}
			k := rng.Intn(len(live))
			id := live[k]
			live = append(live[:k], live[k+1:]...)
			record("depart id=%d", id)
			if err := c.Depart(id); err != nil {
				res.failErr = fmt.Errorf("depart %d: %w", id, err)
				res.failOp = i
				return res
			}
		case 3: // advance sim time
			d := rng.Duration(10*sim.Microsecond, 2*sim.Millisecond)
			record("advance %v", d)
			eng.RunUntil(eng.Now().Add(d))
		case 4: // submit a burst on a random live tenant
			if len(live) == 0 {
				record("submit (none live)")
				continue
			}
			id := live[rng.Intn(len(live))]
			n := 1 + rng.Intn(8)
			record("submit id=%d n=%d", id, n)
			for j := 0; j < n; j++ {
				err := c.Submit(id, j, 64+rng.Intn(4)*64, func(error) { res.resolved++ })
				if err == nil {
					res.accepted++
				}
			}
		}
		if err := c.CheckInvariants(); err != nil {
			res.failErr = err
			res.failOp = i
			return res
		}
	}
	// Drain: freeze the lease clock so rotation stops, then run out.
	c.SetHorizon(eng.Now())
	eng.Run()
	if err := c.CheckInvariants(); err != nil {
		res.failErr = fmt.Errorf("after drain: %w", err)
		res.failOp = nops
	}
	return res
}

// shrink finds the shortest failing prefix by replaying nops = 1..k.
func shrink(seed uint64, failNops int) tapeResult {
	for n := 1; n <= failNops; n++ {
		if r := runTape(seed, n); r.failErr != nil {
			return r
		}
	}
	return runTape(seed, failNops)
}

func TestSchedulerProperties(t *testing.T) {
	const nops = 120
	seeds := []uint64{1, 2, 3, 5, 8, 13, 21, 34, 55, 89}
	if testing.Short() {
		seeds = seeds[:4]
	}
	for _, seed := range seeds {
		res := runTape(seed, nops)
		if res.failErr != nil {
			min := shrink(seed, res.failOp+1)
			t.Errorf("seed %d: invariant violated at op %d: %v", seed, res.failOp, res.failErr)
			t.Errorf("minimal failing prefix (%d ops):", len(min.ops))
			for i, op := range min.ops {
				t.Errorf("  %3d: %s", i, op)
			}
			continue
		}
		// Every accepted request resolved exactly once — no hangs, no
		// double completions — even across preemptions and departures.
		if res.accepted != res.resolved {
			t.Errorf("seed %d: accepted %d requests but resolved %d", seed, res.accepted, res.resolved)
		}
	}
}

func TestTapeReplayIsDeterministic(t *testing.T) {
	// The shrinking contract: a replayed prefix is the same prefix.
	a := runTape(99, 60)
	b := runTape(99, 60)
	if len(a.ops) != len(b.ops) {
		t.Fatalf("replay produced %d ops vs %d", len(a.ops), len(b.ops))
	}
	for i := range a.ops {
		if a.ops[i] != b.ops[i] {
			t.Fatalf("op %d diverged:\n  %s\n  %s", i, a.ops[i], b.ops[i])
		}
	}
	if a.accepted != b.accepted || a.resolved != b.resolved {
		t.Fatalf("counters diverged: %d/%d vs %d/%d", a.accepted, a.resolved, b.accepted, b.resolved)
	}
	half := runTape(99, 30)
	for i := range half.ops {
		if half.ops[i] != a.ops[i] {
			t.Fatalf("prefix op %d diverged:\n  %s\n  %s", i, half.ops[i], a.ops[i])
		}
	}
}

func TestBoundedWaitUnderLease(t *testing.T) {
	// No starvation: with a positive lease, every admitted tenant —
	// whatever its weight — is placed within tenants × (lease +
	// max reconfig) of queueing, indefinitely.
	eng := sim.NewEngine(1)
	fab := fabric.New(eng, fabric.DefaultConfig(), "tag")
	cfg := DefaultConfig()
	cfg.Lease = 400 * sim.Microsecond
	c := New(eng, fab, cfg)
	horizon := sim.Time(200 * sim.Millisecond)
	c.SetHorizon(horizon)
	const n = 10
	for i := 0; i < n; i++ {
		// Weight 1 vs weight 16 tenants compete; sizes 1–2 MiB.
		w := 1
		if i%2 == 0 {
			w = 16
		}
		if _, err := c.Admit(Spec{
			Name:   fmt.Sprintf("t%02d", i),
			Weight: w,
			Image:  testImage(fmt.Sprintf("i%02d", i), 1+int64(i%2)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	eng.RunUntil(horizon)
	eng.Run()
	// 2 MiB reconfigures in 5 ms; bound with slack.
	bound := sim.Duration(n) * (cfg.Lease + 6*sim.Millisecond)
	for i := 0; i < c.Tenants(); i++ {
		tn, _ := c.Tenant(i)
		if tn.Placements == 0 {
			t.Fatalf("tenant %d starved: never placed", i)
		}
		if tn.MaxWait > bound {
			t.Fatalf("tenant %d (weight %d) waited %v, bound %v", i, tn.Spec.Weight, tn.MaxWait, bound)
		}
	}
}
