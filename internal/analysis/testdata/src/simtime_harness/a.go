// Package simtime_harness is hyperlint golden-test input: unit
// hygiene applies to the harness layer too — experiment definitions
// parameterize models with durations.
package simtime_harness

import "hyperion/internal/sim"

func configure(eng *sim.Engine) {
	eng.RunFor(sim.Duration(777)) // want `raw literal 777 has type sim\.Duration`
	eng.RunFor(80 * sim.Picosecond)
}
