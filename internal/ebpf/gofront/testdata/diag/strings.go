// String types and literals are outside the subset.
package prog

type Ctx struct {
	A uint64
}

func Entry(ctx *Ctx) uint64 {
	var name string   // want 11 "string values are outside the restricted subset (no dynamic memory)" no-string
	tag := "attacker" // want 9 "string values are outside the restricted subset (no dynamic memory)" no-string
	return 0
}
