// Package rpc is the flexible RPC interface of §2.4 (after Willow):
// clients drive requests directly to the DPU that owns the data
// (client-driven routing), and the server executes handlers either
// run-to-completion — the shared-nothing fast path the paper advocates —
// or through a queued worker, the ablation's baseline.
package rpc

import (
	"errors"
	"fmt"

	"hyperion/internal/netsim"
	"hyperion/internal/sim"
	"hyperion/internal/telemetry"
	"hyperion/internal/transport"
)

// Mode selects the server execution discipline.
type Mode int

const (
	// RunToCompletion executes the handler inline at message delivery.
	RunToCompletion Mode = iota
	// Queued enqueues requests for a single dispatcher goroutine-model
	// with per-dispatch overhead (a CPU-style request queue).
	Queued
)

// Errors.
var (
	ErrTimeout  = errors.New("rpc: request timed out")
	ErrNoMethod = errors.New("rpc: no such method")
	ErrRemote   = errors.New("rpc: remote error")
)

type request struct {
	ID     uint64
	Method string
	Arg    any
	Span   telemetry.RequestID
}

type response struct {
	ID  uint64
	Val any
	Err string
	// bytes of the response body, for wire accounting.
}

// Handler serves one method. respond must be called exactly once; it
// may be called asynchronously after storage completes. respBytes is
// the response's wire size.
type Handler func(arg any, respond func(val any, respBytes int, err error))

// Server dispatches incoming requests to handlers.
type Server struct {
	eng      *sim.Engine
	ep       transport.Endpoint
	mode     Mode
	handlers map[string]Handler

	// Queued-mode state.
	queue            []func()
	draining         bool
	DispatchOverhead sim.Duration

	rec    *telemetry.Recorder
	active telemetry.RequestID // span of the request being served

	Requests, Errors int64
}

// SetRecorder arms the telemetry plane: one span per served request,
// from handler entry to response send, named after the method.
// Disarmed (nil) the serve path is bit-identical to the unhooked
// server.
func (s *Server) SetRecorder(rec *telemetry.Recorder) { s.rec = rec }

// ActiveSpan returns the trace context of the request currently being
// served (0 outside a handler's synchronous extent). Handlers that
// fan out to storage or other services read it here to keep the
// request's spans joined across layers.
func (s *Server) ActiveSpan() telemetry.RequestID { return s.active }

// NewServer wraps a transport endpoint.
func NewServer(eng *sim.Engine, ep transport.Endpoint, mode Mode) *Server {
	s := &Server{
		eng:              eng,
		ep:               ep,
		mode:             mode,
		handlers:         make(map[string]Handler),
		DispatchOverhead: 2 * sim.Microsecond,
	}
	ep.OnMessage(s.onMessage)
	return s
}

// Handle registers a method.
func (s *Server) Handle(method string, h Handler) { s.handlers[method] = h }

func (s *Server) onMessage(src netsim.Addr, msg transport.Message) {
	req, ok := msg.Payload.(request)
	if !ok {
		return
	}
	s.Requests++
	work := func() { s.serve(src, req) }
	if s.mode == RunToCompletion {
		work()
		return
	}
	s.queue = append(s.queue, work)
	s.drain()
}

// drain processes the queue one item at a time with dispatch overhead,
// modeling a single CPU worker.
func (s *Server) drain() {
	if s.draining || len(s.queue) == 0 {
		return
	}
	s.draining = true
	next := s.queue[0]
	s.queue = s.queue[1:]
	s.eng.After(s.DispatchOverhead, "rpc.dispatch", func() {
		next()
		s.draining = false
		s.drain()
	})
}

func (s *Server) serve(src netsim.Addr, req request) {
	h, ok := s.handlers[req.Method]
	if !ok {
		s.Errors++
		s.reply(src, response{ID: req.ID, Err: ErrNoMethod.Error() + ": " + req.Method}, 64, req.Span)
		return
	}
	start := s.eng.Now()
	prev := s.active
	s.active = req.Span
	done := false
	h(req.Arg, func(val any, respBytes int, err error) {
		if done {
			panic("rpc: respond called twice for " + req.Method)
		}
		done = true
		resp := response{ID: req.ID, Val: val}
		if err != nil {
			s.Errors++
			resp.Err = err.Error()
			resp.Val = nil
		}
		if respBytes < 64 {
			respBytes = 64
		}
		if s.rec != nil {
			s.rec.Span("rpc.server", req.Method, req.Span, start, s.eng.Now())
		}
		s.reply(src, resp, respBytes, req.Span)
	})
	s.active = prev
}

func (s *Server) reply(dst netsim.Addr, resp response, bytes int, span telemetry.RequestID) {
	_ = s.ep.Send(dst, transport.Message{Payload: resp, Bytes: bytes, Span: span})
}

// Client issues requests.
type Client struct {
	eng     *sim.Engine
	ep      transport.Endpoint
	nextID  uint64
	pending map[uint64]*pendingCall
	Timeout sim.Duration

	// Retry policy. All three fields default to zero, which preserves
	// single-attempt semantics exactly (same events, same counters). With
	// MaxRetries > 0, a timed-out call is retried up to that many extra
	// times, waiting RetryBackoff<<attempt between attempts; if
	// DeadlineBudget > 0 the whole call (attempts + backoffs) must fit
	// within that budget measured from the first Send, otherwise the
	// caller sees ErrTimeout without further retries.
	MaxRetries     int
	RetryBackoff   sim.Duration
	DeadlineBudget sim.Duration

	rec *telemetry.Recorder

	Calls, Timeouts int64
	Retries         int64 // retry attempts actually issued
}

// SetRecorder arms the telemetry plane: one span per Call covering
// the whole exchange (all attempts and backoffs), named after the
// method. Disarmed (nil) the call path is bit-identical to the
// unhooked client.
func (c *Client) SetRecorder(rec *telemetry.Recorder) { c.rec = rec }

type pendingCall struct {
	cb    func(val any, err error)
	timer sim.EventRef
}

// NewClient wraps a transport endpoint.
func NewClient(eng *sim.Engine, ep transport.Endpoint) *Client {
	c := &Client{eng: eng, ep: ep, pending: make(map[uint64]*pendingCall), Timeout: 100 * sim.Millisecond}
	ep.OnMessage(c.onMessage)
	return c
}

// Engine exposes the client's engine so layers above (e.g. nvmeof) can
// schedule their own retry backoffs on the same clock.
func (c *Client) Engine() *sim.Engine { return c.eng }

func (c *Client) onMessage(src netsim.Addr, msg transport.Message) {
	resp, ok := msg.Payload.(response)
	if !ok {
		return
	}
	pc, ok := c.pending[resp.ID]
	if !ok {
		return
	}
	delete(c.pending, resp.ID)
	c.eng.Cancel(pc.timer)
	pc.timer = sim.NoEvent
	if resp.Err != "" {
		pc.cb(nil, fmt.Errorf("%w: %s", ErrRemote, resp.Err))
		return
	}
	pc.cb(resp.Val, nil)
}

// Call sends a request of argBytes wire size and invokes cb with the
// response or error. cb runs exactly once. When the client's retry
// policy is armed (MaxRetries > 0), timed-out attempts are retried
// with exponential backoff inside the deadline budget before cb sees
// ErrTimeout.
func (c *Client) Call(dst netsim.Addr, method string, arg any, argBytes int, cb func(val any, err error)) {
	c.CallSpan(dst, method, arg, argBytes, 0, cb)
}

// CallSpan is Call carrying a request-scoped trace context: the span
// id travels inside the request envelope to the server (where
// ActiveSpan exposes it to handlers) and tags the client-side span.
func (c *Client) CallSpan(dst netsim.Addr, method string, arg any, argBytes int, span telemetry.RequestID, cb func(val any, err error)) {
	if c.rec != nil {
		callStart := c.eng.Now()
		inner := cb
		cb = func(val any, err error) {
			c.rec.Span("rpc.client", method, span, callStart, c.eng.Now())
			inner(val, err)
		}
	}
	if c.MaxRetries <= 0 {
		c.attempt(dst, method, arg, argBytes, span, cb)
		return
	}
	var deadline sim.Time
	if c.DeadlineBudget > 0 {
		deadline = c.eng.Now().Add(c.DeadlineBudget)
	}
	var try func(n int)
	try = func(n int) {
		c.attempt(dst, method, arg, argBytes, span, func(val any, err error) {
			if errors.Is(err, ErrTimeout) && n < c.MaxRetries {
				backoff := c.RetryBackoff << uint(n)
				// Retry only if another full attempt can still fit in the
				// budget; otherwise surface the timeout now rather than
				// burning the caller's remaining time on a doomed attempt.
				if deadline == 0 || c.eng.Now().Add(backoff+c.Timeout) <= deadline {
					c.Retries++
					if backoff > 0 {
						c.eng.After(backoff, "rpc.retry", func() { try(n + 1) })
					} else {
						try(n + 1)
					}
					return
				}
			}
			cb(val, err)
		})
	}
	try(0)
}

// attempt issues one wire attempt with its own timeout timer.
func (c *Client) attempt(dst netsim.Addr, method string, arg any, argBytes int, span telemetry.RequestID, cb func(val any, err error)) {
	c.Calls++
	c.nextID++
	id := c.nextID
	if argBytes < 64 {
		argBytes = 64
	}
	pc := &pendingCall{cb: cb}
	c.pending[id] = pc
	pc.timer = c.eng.After(c.Timeout, "rpc.timeout", func() {
		if _, still := c.pending[id]; still {
			delete(c.pending, id)
			c.Timeouts++
			cb(nil, ErrTimeout)
		}
	})
	err := c.ep.Send(dst, transport.Message{Payload: request{ID: id, Method: method, Arg: arg, Span: span}, Bytes: argBytes, Span: span})
	if err != nil {
		delete(c.pending, id)
		c.eng.Cancel(pc.timer)
		pc.timer = sim.NoEvent
		cb(nil, err)
	}
}
