package gofront

import (
	"hyperion/internal/ebpf"
)

// emit turns allocated IR into the final instruction stream. Slot
// accounting mirrors ehdl's emitter: LDDW and frame-address sequences
// occupy two slots, labels occupy none, and a 64-bit register move
// whose operands coalesced to the same physical register vanishes —
// that elision is what makes `p := mapLookup(...)` cost zero
// instructions over the bare call, like hand-written assembly.
func emit(c *compiler, ir []irIns, phys map[vreg]uint8) []ebpf.Instruction {
	reg := func(v vreg) uint8 {
		if v == vFP {
			return ebpf.R10
		}
		return phys[v]
	}

	// Pass 1: slot width of every IR instruction, then label → slot.
	widths := make([]int, len(ir))
	for i, ins := range ir {
		switch ins.op {
		case opLabel:
			widths[i] = 0
		case opMovImm:
			if ins.imm < -1<<31 || ins.imm >= 1<<31 {
				widths[i] = 2 // lddw
			} else {
				widths[i] = 1
			}
		case opMovReg:
			if ins.coalesce && !ins.is32 && reg(ins.dst) == reg(ins.src) {
				widths[i] = 0 // coalesced copy
			} else {
				widths[i] = 1
			}
		case opFrameAddr:
			widths[i] = 2 // mov fp + sub
		default:
			widths[i] = 1
		}
	}
	slotAt := make([]int, len(ir)+1)
	for i, w := range widths {
		slotAt[i+1] = slotAt[i] + w
	}
	labelSlot := map[int]int{}
	for i, ins := range ir {
		if ins.op == opLabel {
			labelSlot[ins.lbl] = slotAt[i]
		}
	}

	out := make([]ebpf.Instruction, 0, slotAt[len(ir)])
	for i, ins := range ir {
		if widths[i] == 0 {
			continue
		}
		switch ins.op {
		case opMovImm:
			if widths[i] == 2 {
				// One Instruction element, two encoding slots.
				out = append(out, ebpf.LoadImm64(reg(ins.dst), ins.imm))
			} else {
				out = append(out, ebpf.Mov64Imm(reg(ins.dst), int32(ins.imm)))
			}
		case opMovReg:
			if ins.is32 {
				out = append(out, ebpf.Instruction{
					Op:  ebpf.ClassALU | ebpf.ALUMov | ebpf.SrcReg,
					Dst: reg(ins.dst), Src: reg(ins.src),
				})
			} else {
				out = append(out, ebpf.Mov64Reg(reg(ins.dst), reg(ins.src)))
			}
		case opALUImm:
			cls := ebpf.ClassALU64
			if ins.is32 {
				cls = ebpf.ClassALU
			}
			out = append(out, ebpf.Instruction{
				Op: cls | ins.alu, Dst: reg(ins.dst), Imm: int32(ins.imm),
			})
		case opALUReg:
			cls := ebpf.ClassALU64
			if ins.is32 {
				cls = ebpf.ClassALU
			}
			out = append(out, ebpf.Instruction{
				Op: cls | ins.alu | ebpf.SrcReg, Dst: reg(ins.dst), Src: reg(ins.src),
			})
		case opLoad:
			out = append(out, ebpf.LoadMem(ins.size, reg(ins.dst), reg(ins.src), int16(ins.off)))
		case opStore:
			out = append(out, ebpf.StoreMem(ins.size, reg(ins.dst), reg(ins.src), int16(ins.off)))
		case opStoreImm:
			out = append(out, ebpf.StoreImm(ins.size, reg(ins.dst), int16(ins.off), int32(ins.imm)))
		case opFrameAddr:
			out = append(out,
				ebpf.Mov64Reg(reg(ins.dst), ebpf.R10),
				ebpf.ALU64Imm(ebpf.ALUSub, reg(ins.dst), ins.off))
		case opCall:
			out = append(out, ebpf.Call(int32(ins.imm)))
		case opJmp:
			target, ok := labelSlot[ins.lbl]
			if !ok {
				c.errs.add(ins.pos, RuleGoto, "jump to undefined label (goto into an unreached block?)")
				continue
			}
			rel := target - (slotAt[i] + 1)
			if rel < -1<<15 || rel >= 1<<15 {
				c.errs.add(ins.pos, RuleSize, "jump distance %d exceeds the ISA's 16-bit offset", rel)
				continue
			}
			off := int16(rel)
			switch {
			case ins.jop == ebpf.JmpA:
				out = append(out, ebpf.Ja(off))
			case ins.src != vNone:
				cls := ebpf.ClassJMP
				if ins.is32 {
					cls = ebpf.ClassJMP32
				}
				out = append(out, ebpf.Instruction{
					Op:  cls | ins.jop | ebpf.SrcReg,
					Dst: reg(ins.dst), Src: reg(ins.src), Off: off,
				})
			default:
				cls := ebpf.ClassJMP
				if ins.is32 {
					cls = ebpf.ClassJMP32
				}
				out = append(out, ebpf.Instruction{
					Op: cls | ins.jop, Dst: reg(ins.dst), Imm: int32(ins.imm), Off: off,
				})
			}
		case opRet:
			out = append(out, ebpf.Exit())
		}
	}
	if len(out) > ebpf.MaxInsns {
		c.errs.add(ir[0].pos, RuleSize, "program has %d instructions, over the ISA limit %d", len(out), ebpf.MaxInsns)
	}
	return out
}
