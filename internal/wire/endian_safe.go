//go:build wiresafe

package wire

import "encoding/binary"

// Portable fallback for the fixed-array endian field types: identical
// byte layouts, decoded through encoding/binary instead of unsafe
// reinterpretation. Correct on any host byte order.

// BE16 is a big-endian uint16 field.
type BE16 [2]byte

// Uint16 decodes the field.
func (b BE16) Uint16() uint16 { return binary.BigEndian.Uint16(b[:]) }

// PutBE16 encodes v.
func PutBE16(v uint16) BE16 {
	var b BE16
	binary.BigEndian.PutUint16(b[:], v)
	return b
}

// BE32 is a big-endian uint32 field.
type BE32 [4]byte

// Uint32 decodes the field.
func (b BE32) Uint32() uint32 { return binary.BigEndian.Uint32(b[:]) }

// PutBE32 encodes v.
func PutBE32(v uint32) BE32 {
	var b BE32
	binary.BigEndian.PutUint32(b[:], v)
	return b
}

// BE64 is a big-endian uint64 field.
type BE64 [8]byte

// Uint64 decodes the field.
func (b BE64) Uint64() uint64 { return binary.BigEndian.Uint64(b[:]) }

// PutBE64 encodes v.
func PutBE64(v uint64) BE64 {
	var b BE64
	binary.BigEndian.PutUint64(b[:], v)
	return b
}

// LE16 is a little-endian uint16 field.
type LE16 [2]byte

// Uint16 decodes the field.
func (b LE16) Uint16() uint16 { return binary.LittleEndian.Uint16(b[:]) }

// PutLE16 encodes v.
func PutLE16(v uint16) LE16 {
	var b LE16
	binary.LittleEndian.PutUint16(b[:], v)
	return b
}

// LE32 is a little-endian uint32 field.
type LE32 [4]byte

// Uint32 decodes the field.
func (b LE32) Uint32() uint32 { return binary.LittleEndian.Uint32(b[:]) }

// PutLE32 encodes v.
func PutLE32(v uint32) LE32 {
	var b LE32
	binary.LittleEndian.PutUint32(b[:], v)
	return b
}

// LE64 is a little-endian uint64 field.
type LE64 [8]byte

// Uint64 decodes the field.
func (b LE64) Uint64() uint64 { return binary.LittleEndian.Uint64(b[:]) }

// PutLE64 encodes v.
func PutLE64(v uint64) LE64 {
	var b LE64
	binary.LittleEndian.PutUint64(b[:], v)
	return b
}

// mustLittleEndian is the unsafe path's startup guard; the portable
// path works on any byte order, so it never fires here but keeps the
// fail-loudly contract testable under both build tags.
func mustLittleEndian(le bool) {
	_ = le
}
