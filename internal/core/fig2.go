package core

import (
	"fmt"

	"hyperion/internal/fabric"
	"hyperion/internal/sim"
)

// Fig2Trace times each stage of the Figure 2 datapath for one request:
// QSFP ingress → DEMUX/AXIS arbiter → eHDL accelerator slot → NVMe host
// IP core → PCIe x4 bridge → SSD flash → and back out.
type Fig2Trace struct {
	Arbiter  sim.Duration // DEMUX + AXIS serialization
	Pipeline sim.Duration // accelerator slot latency
	Storage  sim.Duration // NVMe command incl. on-card PCIe DMA
	Egress   sim.Duration // response serialization to QSFP
	Total    sim.Duration
}

// ProbeBitstream returns a small identity accelerator used by the
// Figure 2 probe (depth ≈ a realistic parse/steer pipeline).
func ProbeBitstream(authTag string) *fabric.Bitstream {
	return &fabric.Bitstream{
		Name:      "fig2-probe",
		SizeBytes: 4 << 20,
		Uses:      fabric.Resources{LUTs: 20000, FFs: 30000, BRAM: 16},
		Depth:     24,
		II:        1,
		AuthTag:   authTag,
		Process:   func(in any) any { return in },
	}
}

// Fig2Probe drives one end-to-end request through the full hardware
// path: a frame-sized item crosses the arbiter into the slot, the
// pipeline processes it, the NVMe host IP core reads blocks from the
// SSD that owns the LBA, and the response serializes back out. reply
// receives the stage trace and the data.
func (d *DPU) Fig2Probe(slot int, ssd int, lba int64, blocks int, reply func(tr Fig2Trace, data []byte, err error)) error {
	if !d.booted {
		return ErrNotBooted
	}
	if ssd < 0 || ssd >= len(d.Hosts) {
		return fmt.Errorf("core: no ssd %d", ssd)
	}
	t0 := d.Eng.Now()
	var tr Fig2Trace
	fail := func(err error) { reply(tr, nil, err) }

	// One trace context joins every stage of this probe (0 disarmed).
	span := d.rec.NewRequest()

	// Stage 1: DEMUX + AXIS arbiter, modeled by an AXIS stream with the
	// fabric's clock and bus width carrying the frame into the slot.
	const frameBytes = 256
	probe := fabric.NewStream(d.Eng, "fig2.probe", d.Cfg.Fabric.ClockHz, 64, 8)
	probe.SetRecorder(d.rec)
	probe.Connect(func(it fabric.Item) {
		t1 := d.Eng.Now()
		tr.Arbiter = t1.Sub(t0)
		if d.rec != nil {
			d.rec.Span("fig2", "arbiter", span, t0, t1)
		}
		// Stage 2: accelerator pipeline.
		serr := d.Fabric.SubmitSpan(slot, it.Payload, span, func(out any) {
			t2 := d.Eng.Now()
			tr.Pipeline = t2.Sub(t1)
			if d.rec != nil {
				d.rec.Span("fig2", "pipeline", span, t1, t2)
			}
			// Stage 3: NVMe host IP core → PCIe bridge → flash.
			rerr := d.Hosts[ssd].ReadSpan(0, lba, blocks, span, func(data []byte, st uint16) {
				t3 := d.Eng.Now()
				tr.Storage = t3.Sub(t2)
				if d.rec != nil {
					d.rec.Span("fig2", "storage", span, t2, t3)
				}
				// Stage 4: response egress serialization on QSFP.
				respBytes := len(data) + 64
				egress := sim.Duration(float64(respBytes) / 12.5e9 * float64(sim.Second))
				d.Eng.After(egress, "fig2.egress", func() {
					t4 := d.Eng.Now()
					tr.Egress = t4.Sub(t3)
					tr.Total = t4.Sub(t0)
					if d.rec != nil {
						// No "total" span: the per-request critical path
						// derives end-to-end time from the stage spans, and
						// a covering span would trivially dominate it.
						d.rec.Span("fig2", "egress", span, t3, t4)
					}
					reply(tr, data, nil)
				})
			})
			if rerr != nil {
				fail(rerr)
			}
		})
		if serr != nil {
			fail(serr)
		}
	})
	return probe.Push(fabric.Item{Bytes: frameBytes, Payload: []byte("probe"), Span: span})
}
