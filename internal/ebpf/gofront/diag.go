package gofront

import (
	"fmt"
	"go/token"
	"strings"
)

// Contract rule identifiers. Every rejection names the rule it
// enforces, so a diagnostic is actionable without reading the
// compiler: the rule is the row of the restricted-Go contract table
// (DESIGN.md §13) the program violated.
const (
	RuleImport    = "no-import"      // programs are self-contained; no stdlib
	RuleHeap      = "no-heap"        // new/make/append/composite literals
	RuleString    = "no-string"      // string types and literals
	RuleLoop      = "bounded-loop"   // for loops must unroll to a constant trip count
	RuleIface     = "no-interface"   // interface types and type assertions
	RuleConc      = "no-concurrency" // go/select/chan; defer rides along
	RuleBounds    = "array-bounds"   // index not provably within the array
	RuleHelper    = "unknown-helper" // call target is not a declared intrinsic
	RuleTypes     = "subset-types"   // only fixed-size ints, arrays, structs, pointers
	RuleStmt      = "subset-stmt"    // statement form outside the subset
	RuleExpr      = "subset-expr"    // expression form outside the subset
	RuleEntry     = "entry"          // entry-point shape (one exported func(ctx *T) uintN)
	RuleGoto      = "forward-goto"   // goto must jump forward (loop-free target)
	RuleRegs      = "out-of-regs"    // too many simultaneously-live locals
	RuleSize      = "program-size"   // unrolled program exceeds the ISA limit
	RuleConst     = "const"          // constant declaration or override problem
	RuleDirect    = "directive"      // malformed //hyperion: directive
	RuleHelperSig = "helper-sig"     // intrinsic declaration shape
)

// Diagnostic is one structured rejection: position, contract rule, and
// a human message. It is the frontend's entire error currency — every
// way a program can be refused produces at least one of these.
type Diagnostic struct {
	Pos  token.Position // file:line:col of the offending construct
	Rule string         // contract rule id (Rule* constants)
	Msg  string
}

func (d Diagnostic) Error() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Msg, d.Rule)
}

// DiagList collects every rejection found in one compile. It
// implements error; diagnostics appear in source order.
type DiagList []Diagnostic

func (l DiagList) Error() string {
	var b strings.Builder
	for i, d := range l {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(d.Error())
	}
	return b.String()
}

// errs accumulates diagnostics during a compile pass.
type errs struct {
	fset *token.FileSet
	list DiagList
}

func (e *errs) add(pos token.Pos, rule, format string, args ...any) {
	e.list = append(e.list, Diagnostic{
		Pos:  e.fset.Position(pos),
		Rule: rule,
		Msg:  fmt.Sprintf(format, args...),
	})
}

func (e *errs) err() error {
	if len(e.list) == 0 {
		return nil
	}
	return e.list
}
