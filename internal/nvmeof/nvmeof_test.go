package nvmeof

import (
	"bytes"
	"errors"
	"testing"

	"hyperion/internal/netsim"
	"hyperion/internal/nvme"
	"hyperion/internal/rpc"
	"hyperion/internal/sim"
	"hyperion/internal/transport"
)

func rig(t testing.TB, kind transport.Kind) (*sim.Engine, *Target, *Initiator) {
	t.Helper()
	eng := sim.NewEngine(1)
	net := netsim.New(eng, netsim.DefaultConfig())
	tn, err := net.Attach("target")
	if err != nil {
		t.Fatal(err)
	}
	in, err := net.Attach("init")
	if err != nil {
		t.Fatal(err)
	}
	cfg := nvme.DefaultConfig("remote-ssd")
	cfg.Blocks = 1 << 20
	host := nvme.NewHost(nvme.New(eng, cfg), nil)
	srv := rpc.NewServer(eng, transport.New(eng, kind, tn), rpc.RunToCompletion)
	tgt := NewTarget(srv, host, 0)
	cli := rpc.NewClient(eng, transport.New(eng, kind, in))
	return eng, tgt, NewInitiator(cli, "target", cfg.BlockSize)
}

func TestWriteReadAllTransports(t *testing.T) {
	for _, kind := range []transport.Kind{transport.TCP, transport.RDMA, transport.Homa} {
		t.Run(kind.String(), func(t *testing.T) {
			eng, tgt, ini := rig(t, kind)
			payload := bytes.Repeat([]byte{0xCD}, 8192)
			var werr error
			ini.Write(100, payload, func(err error) { werr = err })
			eng.Run()
			if werr != nil {
				t.Fatal(werr)
			}
			var got []byte
			ini.Read(100, 2, func(data []byte, err error) {
				if err != nil {
					t.Error(err)
				}
				got = data
			})
			eng.Run()
			if !bytes.Equal(got, payload) {
				t.Fatal("remote read mismatch")
			}
			if tgt.Reads != 1 || tgt.Writes != 1 {
				t.Fatalf("target counters r=%d w=%d", tgt.Reads, tgt.Writes)
			}
		})
	}
}

func TestFlush(t *testing.T) {
	eng, tgt, ini := rig(t, transport.RDMA)
	var ferr error
	done := false
	ini.Write(0, make([]byte, 4096), func(error) {
		ini.Flush(func(err error) { ferr = err; done = true })
	})
	eng.Run()
	if !done || ferr != nil {
		t.Fatalf("flush done=%v err=%v", done, ferr)
	}
	if tgt.Flushes != 1 {
		t.Fatalf("flushes = %d", tgt.Flushes)
	}
}

func TestUnalignedWriteRejected(t *testing.T) {
	eng, _, ini := rig(t, transport.RDMA)
	var got error
	ini.Write(0, make([]byte, 100), func(err error) { got = err })
	eng.Run()
	if got == nil {
		t.Fatal("unaligned write accepted")
	}
}

func TestOutOfRangeReadReportsStatus(t *testing.T) {
	eng, _, ini := rig(t, transport.RDMA)
	var got error
	ini.Read(1<<40, 1, func(_ []byte, err error) { got = err })
	eng.Run()
	if got == nil || !errors.Is(got, rpc.ErrRemote) {
		t.Fatalf("err = %v", got)
	}
}

func TestRemoteVsLocalLatencyShape(t *testing.T) {
	// Remote 4K read ≈ local flash read + ~1 network RTT; the remote
	// penalty over this fabric must stay small relative to flash time
	// (ReFlex's "remote flash ≈ local flash" with fast transports).
	eng, _, ini := rig(t, transport.RDMA)
	var doneAt sim.Time
	ini.Read(0, 1, func([]byte, error) { doneAt = eng.Now() })
	eng.Run()
	remote := doneAt.Sub(0)
	flash := nvme.DefaultConfig("x").ReadLatency
	if remote < sim.Duration(flash) {
		t.Fatalf("remote read %v faster than flash %v", remote, flash)
	}
	if remote > sim.Duration(flash)*13/10 {
		t.Fatalf("remote read %v more than 30%% over local flash %v", remote, flash)
	}
}

func BenchmarkRemoteRead4K(b *testing.B) {
	eng, _, ini := rig(b, transport.RDMA)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ini.Read(int64(i%1000), 1, func([]byte, error) {})
		if i%64 == 0 {
			eng.Run()
		}
	}
	eng.Run()
}

func TestRoundTripAllocFree(t *testing.T) {
	// With telemetry disarmed, a full write+flush round trip —
	// initiator capsule → rpc envelope → transport frames → target
	// handler → nvme device and back — must run entirely out of the
	// free lists. Reads are exempt from the pin: the device returns a
	// freshly owned copy of the data by contract, which is one
	// deliberate allocation. The first laps warm every pool on the
	// path (wire capsules, rpc calls, reassembly, nvme contexts).
	eng, _, ini := rig(t, transport.RDMA)
	var werr, ferr error
	wcb := func(err error) { werr = err }
	fcb := func(err error) { ferr = err }
	payload := make([]byte, 4096)
	for i := 0; i < 4; i++ {
		ini.Write(0, payload, wcb)
		ini.Flush(fcb)
		eng.Run()
	}
	if werr != nil || ferr != nil {
		t.Fatal(werr, ferr)
	}
	allocs := testing.AllocsPerRun(200, func() {
		ini.Write(0, payload, wcb)
		ini.Flush(fcb)
		eng.Run()
	})
	if werr != nil || ferr != nil {
		t.Fatal(werr, ferr)
	}
	if allocs != 0 {
		t.Fatalf("transport→rpc→nvmeof round trip allocates %v/op; want 0", allocs)
	}
}
