package chase

import (
	_ "embed"
	"fmt"

	"hyperion/internal/ebpf"
	"hyperion/internal/ebpf/gofront"
)

// The per-hop program ships as restricted Go and is compiled by the
// gofront frontend at service start. The hand-assembled StepProgram in
// program.go is retained as the differential-test oracle: the two must
// stay shape-identical instruction by instruction.

//go:embed step_prog.go
var stepSource []byte

// CompileStep builds step_prog.go through the restricted-Go frontend.
func CompileStep() ([]ebpf.Instruction, error) {
	p, err := gofront.Compile("step_prog.go", stepSource, gofront.Options{})
	if err != nil {
		return nil, fmt.Errorf("chase: frontend: %w", err)
	}
	if p.CtxSize != CtxBytes {
		return nil, fmt.Errorf("chase: frontend context is %d bytes, want %d", p.CtxSize, CtxBytes)
	}
	return p.Insns, nil
}
