package tenant

import (
	"errors"
	"fmt"
	"testing"

	"hyperion/internal/fabric"
	"hyperion/internal/sim"
)

func testImage(name string, mib int64) *fabric.Bitstream {
	return &fabric.Bitstream{
		Name:      name,
		SizeBytes: mib << 20,
		Uses:      fabric.Resources{LUTs: 20000, FFs: 40000, BRAM: 32, DSP: 16},
		Depth:     12,
		II:        1,
		AuthTag:   "tag",
		Process:   func(in any) any { return in },
	}
}

func newTestPlane(t *testing.T, lease sim.Duration) (*sim.Engine, *fabric.Fabric, *Controller) {
	t.Helper()
	eng := sim.NewEngine(1)
	fab := fabric.New(eng, fabric.DefaultConfig(), "tag")
	cfg := DefaultConfig()
	cfg.Lease = lease
	return eng, fab, New(eng, fab, cfg)
}

func TestAdmissionControl(t *testing.T) {
	_, fab, c := newTestPlane(t, 0)
	if _, err := c.Admit(Spec{Name: "w0", Weight: 0, Image: testImage("a", 1)}); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("weight 0: got %v", err)
	}
	if _, err := c.Admit(Spec{Name: "noimg", Weight: 1}); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("nil image: got %v", err)
	}
	huge := testImage("huge", 4)
	huge.Uses = fab.Config().Total // whole device: over the per-slot budget
	if _, err := c.Admit(Spec{Name: "huge", Weight: 1, Image: huge}); !errors.Is(err, ErrRejected) {
		t.Fatalf("oversized image: got %v", err)
	}
	for i := 0; i < c.cfg.MaxTenants; i++ {
		if _, err := c.Admit(Spec{Name: fmt.Sprintf("t%02d", i), Weight: 1, Image: testImage("a", 1)}); err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
	}
	if _, err := c.Admit(Spec{Name: "extra", Weight: 1, Image: testImage("a", 1)}); !errors.Is(err, ErrRejected) {
		t.Fatalf("over cap: got %v", err)
	}
	if c.Rejected != 2 {
		t.Fatalf("Rejected = %d, want 2", c.Rejected)
	}
}

func TestPlacementAndSubmit(t *testing.T) {
	eng, fab, c := newTestPlane(t, 0)
	tn, err := c.Admit(Spec{Name: "solo", Weight: 1, Image: testImage("solo", 4)})
	if err != nil {
		t.Fatal(err)
	}
	if tn.State != StateReconfiguring || tn.Slot != 0 {
		t.Fatalf("not placed immediately: %v slot %d", tn.State, tn.Slot)
	}
	// Submit before activation is refused retryably.
	if err := c.Submit(tn.ID, 1, 64, nil); !errors.Is(err, ErrNotActive) {
		t.Fatalf("submit while reconfiguring: %v", err)
	}
	eng.Run()
	if tn.State != StateActive {
		t.Fatalf("not active after reconfig: %v", tn.State)
	}
	// The 4 MiB image reconfigures in exactly SizeBytes/ICAP seconds.
	if got, want := tn.ActivatedAt.Sub(sim.Time(0)), fab.ReconfigTime(4<<20); got != want {
		t.Fatalf("activation at %v, want %v", got, want)
	}
	var done int
	for i := 0; i < 10; i++ {
		if err := c.Submit(tn.ID, i, 64, func(err error) {
			if err != nil {
				t.Errorf("request failed: %v", err)
			}
			done++
		}); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	if done != 10 || tn.Completed != 10 {
		t.Fatalf("completed %d/%d, want 10", done, tn.Completed)
	}
	if tn.Lat.Count() != 10 || tn.Lat.Min() <= 0 {
		t.Fatalf("latency not recorded: n=%d min=%v", tn.Lat.Count(), tn.Lat.Min())
	}
}

func TestLeaseRotationSharesSlots(t *testing.T) {
	// 8 tenants over 5 slots with a 500 µs lease: everyone gets placed,
	// nobody waits unboundedly, and preemption counters move.
	eng, _, c := newTestPlane(t, 500*sim.Microsecond)
	horizon := sim.Time(100 * sim.Millisecond)
	c.SetHorizon(horizon)
	var ids []int
	for i := 0; i < 8; i++ {
		tn, err := c.Admit(Spec{Name: fmt.Sprintf("t%02d", i), Weight: 1 + i%3, Image: testImage("img", 1)})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, tn.ID)
	}
	eng.RunUntil(horizon)
	eng.Run()
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		tn, _ := c.Tenant(id)
		if tn.Placements == 0 {
			t.Fatalf("tenant %d never placed under lease rotation", id)
		}
		// FIFO queue + bounded lease + bounded reconfig: wait is bounded
		// by tenants × (lease + reconfig). 1 MiB reconfigures in 2.5 ms.
		bound := sim.Duration(8) * (500*sim.Microsecond + 3*sim.Millisecond)
		if tn.MaxWait > bound {
			t.Fatalf("tenant %d waited %v (bound %v)", id, tn.MaxWait, bound)
		}
	}
	if c.Preempts == 0 {
		t.Fatal("lease rotation produced no preemptions")
	}
}

func TestDepartFreesSlotForWaiter(t *testing.T) {
	eng, _, c := newTestPlane(t, 0)
	var ids []int
	for i := 0; i < 6; i++ {
		tn, err := c.Admit(Spec{Name: fmt.Sprintf("t%02d", i), Weight: 1, Image: testImage("img", 1)})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, tn.ID)
	}
	eng.Run()
	waiter, _ := c.Tenant(ids[5])
	if waiter.State != StateQueued {
		t.Fatalf("6th tenant over 5 slots should queue, is %v", waiter.State)
	}
	if err := c.Depart(ids[2]); err != nil {
		t.Fatal(err)
	}
	if waiter.State != StateReconfiguring || waiter.Slot != 2 {
		t.Fatalf("waiter not promoted into freed slot: %v slot %d", waiter.State, waiter.Slot)
	}
	eng.Run()
	if waiter.State != StateActive {
		t.Fatalf("waiter never activated: %v", waiter.State)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDepartMidReconfigCancels(t *testing.T) {
	eng, fab, c := newTestPlane(t, 0)
	tn, err := c.Admit(Spec{Name: "gone", Weight: 1, Image: testImage("img", 8)})
	if err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(sim.Time(fab.ReconfigTime(8<<20) / 2))
	if err := c.Depart(tn.ID); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if tn.State != StateDeparted {
		t.Fatalf("state %v after depart", tn.State)
	}
	s, _ := fab.Slot(0)
	if s.State != fabric.SlotEmpty {
		t.Fatalf("slot not reclaimed: %v", s.State)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestReportSortedByName(t *testing.T) {
	eng, _, c := newTestPlane(t, 0)
	names := []string{"zeta", "alpha", "mike"}
	for _, n := range names {
		if _, err := c.Admit(Spec{Name: n, Weight: 1, Image: testImage("img", 1)}); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	rows := c.Report(10 * sim.Millisecond)
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	want := []string{"alpha", "mike", "zeta"}
	for i, r := range rows {
		if r.Name != want[i] {
			t.Fatalf("row %d = %q, want %q", i, r.Name, want[i])
		}
	}
}

func TestSLOViolationAccounting(t *testing.T) {
	eng, _, c := newTestPlane(t, 0)
	// Impossible latency objective (sub-picosecond) and a trivially met
	// goodput floor.
	tn, err := c.Admit(Spec{
		Name: "strict", Weight: 1, Image: testImage("img", 1),
		SLO: SLO{P99: 1, Goodput: 0.001},
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	for i := 0; i < 20; i++ {
		if err := c.Submit(tn.ID, i, 64, nil); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	rows := c.Report(eng.Now().Sub(sim.Time(0)))
	if !rows[0].ViolLat {
		t.Fatal("1 ps p99 objective not flagged")
	}
	if rows[0].ViolGood {
		t.Fatal("met goodput floor flagged")
	}
	if rows[0].Violations() != 1 {
		t.Fatalf("Violations() = %d, want 1", rows[0].Violations())
	}
}
