// Package spanpair is hyperlint golden-test input: telemetry span
// pairing against the real hyperion/internal/telemetry API.
package spanpair

import (
	"errors"

	"hyperion/internal/sim"
	"hyperion/internal/telemetry"
)

var errBad = errors.New("bad")

func balanced(rec *telemetry.Recorder, t0, t1 sim.Time) {
	sp := rec.Begin("stage", "work", 1, t0)
	sp.End(t1)
}

func leakOnBranch(rec *telemetry.Recorder, bad bool, t0, t1 sim.Time) error {
	sp := rec.Begin("stage", "work", 1, t0) // want `span sp begun here is not ended on every path`
	if bad {
		return errBad
	}
	sp.End(t1)
	return nil
}

func endedOnBothArms(rec *telemetry.Recorder, bad bool, t0, t1 sim.Time) error {
	sp := rec.Begin("stage", "work", 1, t0)
	if bad {
		sp.End(t1)
		return errBad
	}
	sp.End(t1)
	return nil
}

func deferredDirect(rec *telemetry.Recorder, bad bool, t0, t1 sim.Time) error {
	sp := rec.Begin("stage", "work", 1, t0)
	defer sp.End(t1)
	if bad {
		return errBad
	}
	return nil
}

func deferredClosure(rec *telemetry.Recorder, bad bool, t0 sim.Time, now func() sim.Time) error {
	sp := rec.Begin("stage", "work", 1, t0)
	defer func() {
		sp.End(now())
	}()
	if bad {
		return errBad
	}
	return nil
}

func doubleEnd(rec *telemetry.Recorder, t0, t1 sim.Time) {
	sp := rec.Begin("stage", "work", 1, t0)
	sp.End(t1)
	sp.End(t1) // want `already ended on every path reaching this End`
}

func chained(rec *telemetry.Recorder, t0, t1 sim.Time) {
	rec.Begin("stage", "work", 1, t0).End(t1)
}

func discarded(rec *telemetry.Recorder, t0 sim.Time) {
	rec.Begin("stage", "work", 1, t0) // want `span begun here is discarded and can never be ended`
}

func moved(rec *telemetry.Recorder, t0, t1 sim.Time) {
	sp := rec.Begin("stage", "work", 1, t0)
	sp2 := sp
	sp2.End(t1)
}

func escapesToHandler(rec *telemetry.Recorder, t0 sim.Time, hand func(telemetry.ActiveSpan)) {
	sp := rec.Begin("stage", "work", 1, t0)
	hand(sp)
}

func escapesToReturn(rec *telemetry.Recorder, t0 sim.Time) telemetry.ActiveSpan {
	sp := rec.Begin("stage", "work", 1, t0)
	return sp
}

type carrier struct {
	sp telemetry.ActiveSpan
}

func escapesToStore(rec *telemetry.Recorder, t0 sim.Time, c *carrier) {
	sp := rec.Begin("stage", "work", 1, t0)
	c.sp = sp
}

func nilRecorderStillPairs(bad bool, t0, t1 sim.Time) error {
	var rec *telemetry.Recorder
	sp := rec.Begin("stage", "work", 1, t0) // want `span sp begun here is not ended on every path`
	if bad {
		return errBad
	}
	sp.End(t1)
	return nil
}

func suppressedLeak(rec *telemetry.Recorder, bad bool, t0, t1 sim.Time) {
	//hyperlint:allow(spanpair) golden test: span intentionally dropped on the bad path
	sp := rec.Begin("stage", "work", 1, t0)
	if bad {
		return
	}
	sp.End(t1)
}
