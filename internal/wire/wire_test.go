package wire

import (
	"encoding/binary"
	"testing"
)

// splitmix64 gives the tests a deterministic value stream without
// pulling in the sim package.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4b9b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func TestEndianRoundTrip(t *testing.T) {
	state := uint64(42)
	for i := 0; i < 1000; i++ {
		v := splitmix64(&state)
		if got := PutBE64(v).Uint64(); got != v {
			t.Fatalf("BE64 round trip: got %#x want %#x", got, v)
		}
		if got := PutLE64(v).Uint64(); got != v {
			t.Fatalf("LE64 round trip: got %#x want %#x", got, v)
		}
		if got := PutBE32(uint32(v)).Uint32(); got != uint32(v) {
			t.Fatalf("BE32 round trip: got %#x want %#x", got, uint32(v))
		}
		if got := PutLE32(uint32(v)).Uint32(); got != uint32(v) {
			t.Fatalf("LE32 round trip: got %#x want %#x", got, uint32(v))
		}
		if got := PutBE16(uint16(v)).Uint16(); got != uint16(v) {
			t.Fatalf("BE16 round trip: got %#x want %#x", got, uint16(v))
		}
		if got := PutLE16(uint16(v)).Uint16(); got != uint16(v) {
			t.Fatalf("LE16 round trip: got %#x want %#x", got, uint16(v))
		}
	}
}

// TestEndianWireBytes pins the byte layout to encoding/binary's, so the
// unsafe and wiresafe builds are indistinguishable on the wire.
func TestEndianWireBytes(t *testing.T) {
	v := uint64(0x0102030405060708)
	var want [8]byte
	binary.BigEndian.PutUint64(want[:], v)
	if PutBE64(v) != BE64(want) {
		t.Fatalf("BE64 layout: got %x want %x", PutBE64(v), want)
	}
	binary.LittleEndian.PutUint64(want[:], v)
	if PutLE64(v) != LE64(want) {
		t.Fatalf("LE64 layout: got %x want %x", PutLE64(v), want)
	}
	var w4 [4]byte
	binary.BigEndian.PutUint32(w4[:], uint32(v))
	if PutBE32(uint32(v)) != BE32(w4) {
		t.Fatalf("BE32 layout: got %x want %x", PutBE32(uint32(v)), w4)
	}
	var w2 [2]byte
	binary.LittleEndian.PutUint16(w2[:], uint16(v))
	if PutLE16(uint16(v)) != LE16(w2) {
		t.Fatalf("LE16 layout: got %x want %x", PutLE16(uint16(v)), w2)
	}
}

func TestOffsetAccessors(t *testing.T) {
	b := make([]byte, 64)
	PutBE64At(b, 8, 0xdeadbeefcafef00d)
	PutLE64At(b, 16, 0xdeadbeefcafef00d)
	PutBE32At(b, 24, 0x01020304)
	PutLE32At(b, 28, 0x01020304)
	PutBE16At(b, 32, 0xabcd)
	PutLE16At(b, 34, 0xabcd)
	if got := BE64At(b, 8); got != 0xdeadbeefcafef00d {
		t.Fatalf("BE64At: %#x", got)
	}
	if got := LE64At(b, 16); got != 0xdeadbeefcafef00d {
		t.Fatalf("LE64At: %#x", got)
	}
	if got := BE32At(b, 24); got != 0x01020304 {
		t.Fatalf("BE32At: %#x", got)
	}
	if got := LE32At(b, 28); got != 0x01020304 {
		t.Fatalf("LE32At: %#x", got)
	}
	if got := BE16At(b, 32); got != 0xabcd {
		t.Fatalf("BE16At: %#x", got)
	}
	if got := LE16At(b, 34); got != 0xabcd {
		t.Fatalf("LE16At: %#x", got)
	}
	if got := binary.BigEndian.Uint64(b[8:]); got != 0xdeadbeefcafef00d {
		t.Fatalf("BE64At wire bytes: %#x", got)
	}
	if got := binary.LittleEndian.Uint64(b[16:]); got != 0xdeadbeefcafef00d {
		t.Fatalf("LE64At wire bytes: %#x", got)
	}
}

func TestOffsetAccessorBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("BE64At past the end did not panic")
		}
	}()
	b := make([]byte, 10)
	BE64At(b, 4) // only 6 bytes remain
}

func TestPoolRefcount(t *testing.T) {
	p := NewPool(64)
	b := p.Get(16)
	if b.Refs() != 1 || b.Len() != 16 {
		t.Fatalf("fresh Buf: refs=%d len=%d", b.Refs(), b.Len())
	}
	b.Retain()
	b.Release()
	if p.Free() != 0 {
		t.Fatal("Buf returned to pool while still referenced")
	}
	b.Release()
	if p.Free() != 1 {
		t.Fatal("last Release did not return Buf to pool")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("double Release did not panic")
			}
		}()
		b.Release()
	}()
}

// TestPoolAliasing is the release-then-reacquire property test: after a
// Buf cycles through the pool, no reacquired Buf may observe stale
// payload bytes, at any requested size relative to the old capacity.
func TestPoolAliasing(t *testing.T) {
	p := NewPool(32)
	state := uint64(7)
	for round := 0; round < 200; round++ {
		n := int(splitmix64(&state)%128) + 1
		b := p.Get(n)
		for i := range b.Bytes() {
			b.Bytes()[i] = byte(splitmix64(&state))
		}
		b.Release()
		m := int(splitmix64(&state)%128) + 1
		nb := p.Get(m)
		for i, c := range nb.Bytes() {
			if c != 0 {
				t.Fatalf("round %d: reacquired Buf (len %d after len %d) has stale byte %#x at %d", round, m, n, c, i)
			}
		}
		nb.Release()
	}
}

func TestResizeZeroesGrowth(t *testing.T) {
	p := NewPool(64)
	b := p.Get(8)
	for i := range b.Bytes() {
		b.Bytes()[i] = 0xff
	}
	b.Resize(4)
	b.Resize(32) // regrow within capacity: bytes 4..32 must be zero
	for i, c := range b.Bytes() {
		if i < 4 && c != 0xff {
			t.Fatalf("Resize clobbered retained byte %d", i)
		}
		if i >= 4 && c != 0 {
			t.Fatalf("Resize exposed stale byte %#x at %d", c, i)
		}
	}
	b.Release()
}

// TestPoolAllocFree pins the steady-state cost of the pool: a warm
// Get/Release cycle must not allocate.
func TestPoolAllocFree(t *testing.T) {
	p := NewPool(4096)
	p.Get(4096).Release() // warm the free list
	allocs := testing.AllocsPerRun(1000, func() {
		b := p.Get(4096)
		b.Bytes()[0] = 1
		b.Release()
	})
	if allocs != 0 {
		t.Fatalf("warm Get/Release allocates %v per op, want 0", allocs)
	}
}

func TestEndianDecodeAllocFree(t *testing.T) {
	b := make([]byte, 64)
	PutBE64At(b, 0, 123456789)
	var sink uint64
	allocs := testing.AllocsPerRun(1000, func() {
		sink += BE64At(b, 0) + LE64At(b, 8) + uint64(BE32At(b, 16))
	})
	if allocs != 0 {
		t.Fatalf("endian decode allocates %v per op, want 0", allocs)
	}
	_ = sink
}
