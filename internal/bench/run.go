package bench

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"
)

// RunOutcome couples an experiment's Result with harness-side
// measurements of the run itself.
type RunOutcome struct {
	Exp    Experiment
	Result Result
	Wall   time.Duration
	Allocs int64 // heap allocations during the run; -1 when run in parallel
}

// RunAll executes every experiment and returns outcomes in All() order.
// workers <= 1 runs sequentially. workers > 1 fans experiments out over
// that many goroutines; each experiment drives its own private
// sim.Engine, so the Results are identical to a sequential run — only
// wall time changes, and per-experiment alloc counts are not attributed
// (reported as -1).
func RunAll(workers int) []RunOutcome { return RunAllShards(workers, 0) }

// RunAllShards is RunAll with an explicit cluster shard count applied
// to every experiment that has a sharded form (shards <= 0 keeps each
// experiment's default). Tables are shard-count invariant, so the
// outcomes differ from RunAll only in wall time.
func RunAllShards(workers, shards int) []RunOutcome {
	exps := All()
	out := make([]RunOutcome, len(exps))
	runOne := func(i int, seq bool) {
		out[i].Exp = exps[i]
		out[i].Allocs = -1
		var m0 runtime.MemStats
		if seq {
			runtime.ReadMemStats(&m0)
		}
		start := time.Now() //hyperlint:allow(nodeterm) harness-side wall measurement; never feeds model time
		out[i].Result = exps[i].RunAt(shards)
		out[i].Wall = time.Since(start) //hyperlint:allow(nodeterm) harness-side wall measurement; never feeds model time
		if seq {
			var m1 runtime.MemStats
			runtime.ReadMemStats(&m1)
			out[i].Allocs = int64(m1.Mallocs - m0.Mallocs)
		}
	}
	if workers <= 1 {
		for i := range exps {
			runOne(i, true)
		}
		return out
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				runOne(i, false)
			}
		}()
	}
	for i := range exps {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out
}

// Record is the machine-readable form of one outcome: a row of the
// BENCH_*.json perf-trajectory files that successive revisions append
// to. Headline is the experiment's first note — the sentence each
// experiment uses to state its key finding.
type Record struct {
	ID            string  `json:"id"`
	Name          string  `json:"name"`
	Title         string  `json:"title"`
	Headline      string  `json:"headline,omitempty"`
	VirtualTime   string  `json:"virtual_time"`
	VirtualTimePs int64   `json:"virtual_time_ps"`
	Events        uint64  `json:"events"`
	WallMS        float64 `json:"wall_ms"`
	Allocs        int64   `json:"allocs"` // -1 when not attributed (parallel run)
	Rows          int     `json:"rows"`
	TableSHA256   string  `json:"table_sha256"`
	// ShardSweep, when present, records the experiment's wall cost as a
	// function of sim.Cluster shard count (E17; attached by
	// `benchctl -shardsweep`). Older reports simply omit it.
	ShardSweep []RackSweepPoint `json:"shard_sweep,omitempty"`
}

// ToRecord converts an outcome to its JSON row.
func (o RunOutcome) ToRecord() Record {
	rec := Record{
		ID:            o.Result.ID,
		Name:          o.Exp.Name,
		Title:         o.Result.Title,
		VirtualTime:   o.Result.SimTime.String(),
		VirtualTimePs: int64(o.Result.SimTime),
		Events:        o.Result.Steps,
		WallMS:        float64(o.Wall.Microseconds()) / 1000,
		Allocs:        o.Allocs,
		Rows:          len(o.Result.Table.Rows),
		TableSHA256:   fmt.Sprintf("%x", sha256.Sum256([]byte(o.Result.Table.String()))),
	}
	if len(o.Result.Notes) > 0 {
		rec.Headline = o.Result.Notes[0]
	}
	return rec
}

// Report is the top-level shape of a BENCH_*.json file.
type Report struct {
	Schema      string   `json:"schema"`
	Workers     int      `json:"workers"`
	HostCPUs    int      `json:"host_cpus,omitempty"` // CPUs the run had; wall numbers are meaningless without it
	TotalWallMS float64  `json:"total_wall_ms"`
	Results     []Record `json:"results"`
}

// MakeReport assembles the in-memory report for outcomes.
func MakeReport(workers int, totalWall time.Duration, outs []RunOutcome) Report {
	rep := Report{
		Schema:      "hyperion-bench/v1",
		Workers:     workers,
		HostCPUs:    runtime.NumCPU(),
		TotalWallMS: float64(totalWall.Microseconds()) / 1000,
	}
	for _, o := range outs {
		rep.Results = append(rep.Results, o.ToRecord())
	}
	return rep
}

// WriteJSON writes outcomes as a machine-readable report to path.
func WriteJSON(path string, workers int, totalWall time.Duration, outs []RunOutcome) error {
	return WriteReport(path, MakeReport(workers, totalWall, outs))
}

// WriteReport writes an assembled (possibly annotated) report to path.
func WriteReport(path string, rep Report) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
