package bench

// e10Programs is the E10 workload suite, shared between the
// EBPFPipeline experiment and the VM backend benchmarks so both measure
// exactly the same programs. The sources are part of the golden E10
// table (program names and instruction counts) — do not edit casually.
var e10Programs = []struct {
	name string
	src  string
}{
	{"pass-all", "mov r0, 0\nexit"},
	{"port-filter", `
		ldxh r2, [r1+10]
		mov r0, 0
		jne r2, 22, out
		mov r0, 1
	out:	exit`},
	{"flow-hash", `
		ldxw r2, [r1+0]
		ldxw r3, [r1+4]
		ldxh r4, [r1+8]
		ldxh r5, [r1+10]
		xor r2, r3
		lsh r4, 16
		or r4, r5
		xor r2, r4
		mov r3, r2
		rsh r3, 16
		xor r2, r3
		and r2, 1023
		mov r0, r2
		exit`},
	{"const-heavy", `
		mov r2, 10
		mov r3, 20
		add r2, r3
		mul r2, 4
		mov r4, r2
		sub r4, 100
		mov r0, 0
		jne r4, 20, out
		mov r0, 1
	out:	exit`},
}

// E10CtxBytes is the context size the E10 programs are verified against.
const E10CtxBytes = 20
