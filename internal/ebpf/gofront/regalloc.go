package gofront

// Linear-scan register allocation over the loop-free IR. Virtual
// registers get one live interval each (the IR is not SSA: a local
// keeps its vreg across redefinitions, so the interval spans first
// def to last use). Positions interleave reads (2i) and writes (2i+1)
// so that a move's source and destination do not conflict — that is
// what lets the emitter coalesce `p := helper(...)` onto r0 and drop
// the move, matching hand-written assembly.

const noReg = uint8(255)

// callerSaved registers are clobbered by helper calls; values live
// across a call must sit in r6-r8 (r9 pins the context, r10 is the
// frame pointer).
var prefAny = [...]uint8{8, 7, 6, 5, 4, 3, 2, 1, 0}
var prefAcrossCall = [...]uint8{8, 7, 6}

type interval struct {
	v          vreg
	start, end int // read/write positions, inclusive
	fixed      uint8
	hasFixed   bool
	hint       vreg // move source; try to share its register
	acrossCall bool
}

// allocate maps every vreg to a physical register, reporting RuleRegs
// diagnostics when the program's live values exceed the machine.
func allocate(c *compiler, fn *lowerer) map[vreg]uint8 {
	ir := fn.ir
	iv := make([]interval, fn.nv)
	for i := range iv {
		iv[i] = interval{v: vreg(i), start: -1, end: -1, hint: vNone}
	}
	touch := func(v vreg, pos int) {
		if v < 0 {
			return
		}
		in := &iv[v]
		if in.start < 0 || pos < in.start {
			in.start = pos
		}
		if pos > in.end {
			in.end = pos
		}
	}
	var callPoints []int
	for i, ins := range ir {
		r, w := 2*i, 2*i+1
		switch ins.op {
		case opMovImm, opFrameAddr:
			touch(ins.dst, w)
		case opMovReg:
			touch(ins.src, r)
			touch(ins.dst, w)
			if ins.dst >= 0 && iv[ins.dst].hint == vNone && iv[ins.dst].start == w {
				iv[ins.dst].hint = ins.src
			}
		case opALUImm:
			touch(ins.dst, r)
			touch(ins.dst, w)
		case opALUReg:
			touch(ins.src, r)
			touch(ins.dst, r)
			touch(ins.dst, w)
		case opLoad:
			touch(ins.src, r)
			touch(ins.dst, w)
		case opStore:
			touch(ins.dst, r) // base address
			touch(ins.src, r)
		case opStoreImm:
			touch(ins.dst, r)
		case opCall:
			for _, a := range ins.args {
				touch(a, r)
			}
			touch(ins.dst, w)
			callPoints = append(callPoints, r)
		case opJmp:
			touch(ins.dst, r)
			touch(ins.src, r)
		case opRet:
			touch(ins.src, r)
		}
	}
	for v := range iv {
		if p, ok := fn.precolor[vreg(v)]; ok {
			iv[v].fixed = p
			iv[v].hasFixed = true
		}
	}
	for i := range iv {
		in := &iv[i]
		for _, cp := range callPoints {
			if in.start < cp && in.end > cp {
				in.acrossCall = true
				break
			}
		}
	}

	// Allocate in order of interval start so move sources are placed
	// before their destinations (enabling the hint).
	order := make([]int, 0, len(iv))
	for i := range iv {
		if iv[i].start >= 0 {
			order = append(order, i)
		}
	}
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && iv[order[j]].start < iv[order[j-1]].start; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}

	phys := make(map[vreg]uint8, len(order))
	conflicts := func(v int, reg uint8) bool {
		for _, o := range order {
			p, done := phys[vreg(o)]
			if !done || p != reg || o == v {
				continue
			}
			if iv[o].start <= iv[v].end && iv[v].start <= iv[o].end {
				return true
			}
		}
		return false
	}
	// Fixed intervals first: the ABI gives them no alternative, so
	// they claim their register before any hint or preference can —
	// a later `return` (r0) must win over a call result hinted to r0.
	for _, v := range order {
		in := &iv[v]
		if !in.hasFixed {
			continue
		}
		if in.acrossCall && in.fixed < 6 {
			c.errs.add(ir[posToIns(in.start)].pos, RuleRegs,
				"value pinned to r%d is live across a helper call; copy it to a local first", in.fixed)
		}
		if conflicts(v, in.fixed) {
			c.errs.add(ir[posToIns(in.start)].pos, RuleRegs,
				"conflicting uses of r%d (overlapping helper calls?)", in.fixed)
		}
		phys[vreg(v)] = in.fixed
	}
	for _, v := range order {
		in := &iv[v]
		if in.hasFixed {
			continue
		}
		assigned := noReg
		if in.hint >= 0 && !in.acrossCall {
			if hp, ok := phys[in.hint]; ok && hp != 9 && !conflicts(v, hp) {
				assigned = hp
			}
		}
		if assigned == noReg {
			prefs := prefAny[:]
			if in.acrossCall {
				prefs = prefAcrossCall[:]
			}
			for _, p := range prefs {
				if !conflicts(v, p) {
					assigned = p
					break
				}
			}
		}
		if assigned == noReg {
			c.errs.add(ir[posToIns(in.start)].pos, RuleRegs,
				"too many values live at once (the ISA has 9 usable registers); restructure the program")
			return phys
		}
		phys[vreg(v)] = assigned
	}
	return phys
}

func posToIns(pos int) int { return pos / 2 }
