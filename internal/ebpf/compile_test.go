package ebpf

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"testing"
)

// The compiled backend's contract is bit-identical semantics with the
// interpreter. These tests enforce it differentially: every program —
// handcrafted, assembled, or randomly generated — runs on both backends
// and must agree on result, error text, step/helper accounting, final
// context bytes, and final map contents.

// diffMaps builds one MapSet instance for a differential run; called
// once per backend so each VM owns an identical, independent copy.
func diffMaps() *MapSet {
	ms := &MapSet{}
	h := NewHashMap(8, 8, 4)
	k := make([]byte, 8)
	v := make([]byte, 8)
	binary.LittleEndian.PutUint64(k, 0xfeed)
	binary.LittleEndian.PutUint64(v, 0xbeef)
	if err := h.Update(k, v); err != nil {
		panic(err)
	}
	ms.Add(h)
	a := NewArrayMap(8, 4)
	binary.LittleEndian.PutUint64(v, 77)
	ak := make([]byte, 4)
	binary.LittleEndian.PutUint32(ak, 1)
	if err := a.Update(ak, v); err != nil {
		panic(err)
	}
	ms.Add(a)
	return ms
}

// dumpMaps serializes a MapSet's full contents for equality checks.
func dumpMaps(ms *MapSet) string {
	var b bytes.Buffer
	for i := 0; i < ms.Len(); i++ {
		m, err := ms.Get(i)
		if err != nil {
			fmt.Fprintf(&b, "map%d:err=%v;", i, err)
			continue
		}
		fmt.Fprintf(&b, "map%d(len=%d):", i, m.Len())
		switch mm := m.(type) {
		case *HashMap:
			mm.Iterate(func(k, v []byte) bool {
				fmt.Fprintf(&b, "%x=%x;", k, v)
				return true
			})
		case *ArrayMap:
			key := make([]byte, 4)
			for j := 0; ; j++ {
				binary.LittleEndian.PutUint32(key, uint32(j))
				v, ok := mm.Lookup(key)
				if !ok {
					break
				}
				fmt.Fprintf(&b, "[%d]=%x;", j, v)
			}
		}
	}
	return b.String()
}

// diffRun executes prog on both backends (fresh VM per backend,
// identical seeded maps) and fails the test on any observable
// divergence. Each program runs twice per backend to exercise compiled
// artifact reuse and the stack-clean fast path.
func diffRun(t *testing.T, name string, prog []Instruction, ctx []byte, wantCompiled bool) {
	t.Helper()
	vi := NewVM(diffMaps())
	vc := NewVM(diffMaps())
	if err := vi.Load(prog); err != nil {
		t.Fatalf("%s: interp load: %v", name, err)
	}
	if err := vc.Load(prog); err != nil {
		t.Fatalf("%s: compiled load: %v", name, err)
	}
	if got := vc.Precompile(); wantCompiled && !got {
		t.Fatalf("%s: program unexpectedly fell back to the interpreter", name)
	}
	for round := 0; round < 2; round++ {
		ctxI := append([]byte(nil), ctx...)
		ctxC := append([]byte(nil), ctx...)
		vi.ResetWindows()
		vc.ResetWindows()
		retI, errI := vi.RunInterpreted(ctxI)
		retC, errC := vc.Run(ctxC)
		if retI != retC {
			t.Errorf("%s round %d: ret: interp=%#x compiled=%#x", name, round, retI, retC)
		}
		es := func(err error) string {
			if err == nil {
				return "<nil>"
			}
			return err.Error()
		}
		if es(errI) != es(errC) {
			t.Errorf("%s round %d: err: interp=%q compiled=%q", name, round, es(errI), es(errC))
		}
		if vi.Steps != vc.Steps {
			t.Errorf("%s round %d: Steps: interp=%d compiled=%d", name, round, vi.Steps, vc.Steps)
		}
		if vi.TotalSteps != vc.TotalSteps {
			t.Errorf("%s round %d: TotalSteps: interp=%d compiled=%d", name, round, vi.TotalSteps, vc.TotalSteps)
		}
		if vi.HelperCalls != vc.HelperCalls {
			t.Errorf("%s round %d: HelperCalls: interp=%d compiled=%d", name, round, vi.HelperCalls, vc.HelperCalls)
		}
		if !bytes.Equal(ctxI, ctxC) {
			t.Errorf("%s round %d: final ctx diverged\ninterp:   %x\ncompiled: %x", name, round, ctxI, ctxC)
		}
		if di, dc := dumpMaps(vi.Maps), dumpMaps(vc.Maps); di != dc {
			t.Errorf("%s round %d: map state diverged\ninterp:   %s\ncompiled: %s", name, round, di, dc)
		}
		if t.Failed() {
			t.Fatalf("%s: aborting after first divergent round\nprogram:\n%s", name, Disassemble(prog))
		}
	}
}

// TestCompiledHandcrafted covers the fusion shapes and fault classes the
// random generator cannot reliably hit: load groups that span regions,
// load→compare→branch fusion, every error class, helper fast paths, and
// division corner cases.
func TestCompiledHandcrafted(t *testing.T) {
	ctx := make([]byte, 64)
	for i := range ctx {
		ctx[i] = byte(i * 7)
	}
	cases := []struct {
		name string
		src  string
	}{
		{"exit-only", "mov r0, 42\nexit"},
		{"alu-chain", "mov r0, 1\nadd r0, 9\nmul r0, 7\nsub r0, 3\nlsh r0, 4\nrsh r0, 2\narsh r0, 1\nneg r0\nxor r0, 255\nor r0, 16\nand r0, 4095\nexit"},
		{"alu32-wrap", "mov32 r0, -1\nadd32 r0, 1\nmov32 r1, -5\nsub32 r0, -7\nmul32 r0, 3\nexit"},
		{"div-mod-zero", "mov r0, 100\nmov r1, 0\ndiv r0, r1\nmov r2, 50\nmod r2, r1\nadd r0, r2\nexit"},
		{"div-mod-zero-imm", "mov r0, 100\ndiv r0, 0\nmov r2, 50\nmod r2, 0\nadd r0, r2\nexit"},
		{"shift-reg-mask", "mov r0, 1\nmov r1, 65\nlsh r0, r1\nmov r2, 1\nmov r3, 33\nlsh32 r2, r3\nadd r0, r2\nexit"},
		{"endian", "mov r0, 0x1234\nbe16 r0\nmov r1, 0x12345678\nbe32 r1\nadd r0, r1\nle64 r0\nexit"},
		{"lddw", "lddw r0, 0x123456789abcdef0\nlddw r1, -1\nadd r0, r1\nexit"},
		{"ctx-loads", "ldxb r0, [r1+0]\nldxh r2, [r1+2]\nldxw r3, [r1+4]\nldxdw r4, [r1+8]\nadd r0, r2\nadd r0, r3\nadd r0, r4\nexit"},
		{"load-group", "ldxw r2, [r1+0]\nldxw r3, [r1+4]\nldxh r4, [r1+8]\nldxh r5, [r1+10]\nxor r2, r3\nlsh r4, 16\nor r4, r5\nxor r2, r4\nmov r0, r2\nexit"},
		{"load-group-clobber", "mov r6, r1\nldxw r2, [r6+0]\nldxw r6, [r6+4]\nadd r2, r6\nmov r0, r2\nexit"},
		{"load-cmp-branch", "ldxh r2, [r1+10]\nmov r0, 0\njne r2, 22, out\nmov r0, 1\nout: exit"},
		{"stack-rw", "mov r2, 0x7777\nstxdw [r10-8], r2\nstxh [r10-16], r2\nstdw [r10-24], 99\nldxdw r0, [r10-8]\nldxh r3, [r10-16]\nldxdw r4, [r10-24]\nadd r0, r3\nadd r0, r4\nexit"},
		{"ctx-store", "mov r2, 0xab\nstxb [r1+0], r2\nstw [r1+4], -1\nldxw r0, [r1+0]\nexit"},
		{"jumps-signed", "mov r0, -5\nmov r1, 3\njsgt r0, r1, big\nmov r0, 111\nexit\nbig: mov r0, 222\nexit"},
		{"jump32-signed", "mov32 r0, -5\nmov32 r1, 3\njsgt32 r0, r1, big\nmov r0, 111\nexit\nbig: mov r0, 222\nexit"},
		{"jset", "mov r0, 10\njset r0, 6, hit\nmov r0, 1\nexit\nhit: mov r0, 2\nexit"},
		{"fallthrough-blocks", "mov r0, 0\njeq r0, 1, skip\nadd r0, 10\nskip: add r0, 100\nexit"},
		{"ktime", "call 5\nmov r6, r0\ncall 5\nsub r0, r6\nexit"},
		{"trace", "mov r1, 42\ncall 6\nmov r0, 7\nexit"},
		{"map-lookup-hit", "stdw [r10-8], 0xfeed\nmov r1, 0\nmov r2, r10\nadd r2, -8\ncall 1\njne r0, 0, deref\nmov r0, 0\nexit\nderef: ldxdw r0, [r0+0]\nexit"},
		{"map-lookup-miss", "stdw [r10-8], 0xdead\nmov r1, 0\nmov r2, r10\nadd r2, -8\ncall 1\nexit"},
		{"map-update-delete", "stdw [r10-8], 0x1111\nstdw [r10-16], 0x2222\nmov r1, 0\nmov r2, r10\nadd r2, -8\nmov r3, r10\nadd r3, -16\ncall 2\nmov r6, r0\nmov r1, 0\nmov r2, r10\nadd r2, -8\ncall 3\nadd r0, r6\nexit"},
		{"map-update-full", "stdw [r10-8], 0x1\nstdw [r10-16], 0x2\nmov r1, 0\nmov r2, r10\nadd r2, -8\nmov r3, r10\nadd r3, -16\ncall 2\nstdw [r10-8], 0x3\ncall 2\nstdw [r10-8], 0x4\ncall 2\nstdw [r10-8], 0x5\ncall 2\nstdw [r10-8], 0x6\ncall 2\nexit"},
		{"array-map", "stw [r10-4], 1\nmov r1, 1\nmov r2, r10\nadd r2, -4\ncall 1\njne r0, 0, deref\nmov r0, 0\nexit\nderef: ldxdw r0, [r0+0]\nexit"},
		{"atomic-add", "mov r2, 5\nstxdw [r10-8], r2\nmov r3, 3\nxadddw [r10-8], r3\nldxdw r0, [r10-8]\nexit"},
		{"bad-mem-load", "mov r2, 0x999\nldxdw r0, [r2+0]\nexit"},
		{"bad-mem-store", "mov r2, 0x999\nstxdw [r2+0], r2\nexit"},
		{"oob-ctx", "ldxdw r0, [r1+60]\nexit"},
		{"unknown-helper", "mov r0, 3\ncall 99\nexit"},
		{"fell-off-end", "mov r0, 1\nadd r0, 1"},
		{"fell-off-end-branch", "mov r0, 5\njeq r0, 5, over\nexit\nover: mov r0, 6"},
		{"readonly-window-write", "stdw [r10-8], 0xfeed\nmov r1, 0\nmov r2, r10\nadd r2, -8\ncall 1\njne r0, 0, wr\nexit\nwr: mov r2, 9\nstxdw [r0+0], r2\nexit"},
		{"helper-bad-key-ptr", "mov r1, 0\nmov r2, 0x42\ncall 1\nexit"},
		{"helper-bad-map-id", "stdw [r10-8], 0x1\nmov r1, 9\nmov r2, r10\nadd r2, -8\ncall 1\nexit"},
	}
	for _, tc := range cases {
		prog, err := Assemble(tc.src)
		if err != nil {
			t.Fatalf("%s: assemble: %v", tc.name, err)
		}
		diffRun(t, tc.name, prog, ctx, true)
	}
}

// TestCompiledFaultInstructions feeds raw malformed instructions to both
// backends: unsupported opcodes must fault lazily (only when reached)
// with identical messages and step counts.
func TestCompiledFaultInstructions(t *testing.T) {
	cases := []struct {
		name string
		prog []Instruction
	}{
		{"bad-alu-op", []Instruction{Mov64Imm(R0, 1), {Op: ClassALU64 | 0xe0}, Exit()}},
		{"bad-endian-width", []Instruction{Mov64Imm(R0, 1), Endian(R0, true, 48), Exit()}},
		{"bad-ld-op", []Instruction{Mov64Imm(R0, 1), {Op: ClassLD | SizeW | ModeMEM}, Exit()}},
		{"bad-atomic-width", []Instruction{Mov64Imm(R0, 1), Atomic(SizeB, R10, R0, -8, AtomicAdd), Exit()}},
		{"bad-atomic-op", []Instruction{
			Mov64Imm(R2, 1), StoreMem(SizeDW, R10, R2, -8),
			Atomic(SizeDW, R10, R2, -8, 0x33), Exit(),
		}},
		{"unreached-bad-op", []Instruction{
			Mov64Imm(R0, 9), JumpImm(JmpEq, R0, 9, 1),
			{Op: ClassALU64 | 0xe0}, Exit(),
		}},
		{"atomic-cmpxchg", []Instruction{
			Mov64Imm(R2, 5), StoreMem(SizeDW, R10, R2, -8),
			Mov64Imm(R0, 5), Mov64Imm(R3, 11),
			Atomic(SizeDW, R10, R3, -8, AtomicCmpXchg),
			LoadMem(SizeDW, R4, R10, -8), ALU64Reg(ALUAdd, R0, R4), Exit(),
		}},
		{"atomic-fetch", []Instruction{
			Mov64Imm(R2, 6), StoreMem(SizeW, R10, R2, -4),
			Mov64Imm(R3, 7), Atomic(SizeW, R10, R3, -4, AtomicXor|AtomicFetch),
			LoadMem(SizeW, R4, R10, -4), ALU64Reg(ALUAdd, R3, R4),
			Mov64Reg(R0, R3), Exit(),
		}},
	}
	ctx := make([]byte, 16)
	for _, tc := range cases {
		diffRun(t, tc.name, tc.prog, ctx, true)
	}
}

// TestCompiledFallback pins the programs that must decline compilation
// and run on the interpreter: back-edges (only the interpreter's step
// limit bounds them) and the empty program.
func TestCompiledFallback(t *testing.T) {
	loop := []Instruction{Mov64Imm(R0, 0), ALU64Imm(ALUAdd, R0, 1), JumpImm(JmpLt, R0, 3, -2), Exit()}
	vm := NewVM(nil)
	if err := vm.Load(loop); err != nil {
		t.Fatal(err)
	}
	if vm.Precompile() {
		t.Fatal("back-edge program must not compile")
	}
	ret, err := vm.Run(nil)
	if err != nil || ret != 3 {
		t.Fatalf("loop via interpreter: ret=%d err=%v", ret, err)
	}

	vm2 := NewVM(nil)
	if err := vm2.Load([]Instruction{}); err != nil {
		t.Fatal(err)
	}
	if vm2.Precompile() {
		t.Fatal("empty program must not compile")
	}
}

// TestCompiledInvalidation checks that Load and RegisterHelper discard
// the artifact: a rebound helper must take effect on the next Run.
func TestCompiledInvalidation(t *testing.T) {
	prog := MustAssemble("call 5\nexit")
	vm := NewVM(nil)
	if err := vm.Load(prog); err != nil {
		t.Fatal(err)
	}
	if !vm.Precompile() {
		t.Fatal("expected compiled")
	}
	if ret, err := vm.Run(nil); err != nil || ret != 1 {
		t.Fatalf("fakeNow run: ret=%d err=%v", ret, err)
	}
	vm.RegisterHelper(HelperKtime, Helper{Name: "ktime_get_ns", Fn: func(vm *VM, a [5]uint64) (uint64, error) {
		return 0xc0ffee, nil
	}})
	if ret, err := vm.Run(nil); err != nil || ret != 0xc0ffee {
		t.Fatalf("rebound helper not picked up: ret=%#x err=%v", ret, err)
	}
	prog2 := MustAssemble("mov r0, 8\nexit")
	if err := vm.Load(prog2); err != nil {
		t.Fatal(err)
	}
	if ret, err := vm.Run(nil); err != nil || ret != 8 {
		t.Fatalf("reload not picked up: ret=%d err=%v", ret, err)
	}
}

// progGen generates random programs: forward-only control flow, a mix of
// ALU/endian/LDDW/memory/jump/call instructions, including faulting and
// chaotic ones. Both backends must agree on every generated program,
// verified or not.
type progGen struct {
	rng     *rand.Rand
	ctxSize int
}

var genALUOps = []uint8{ALUAdd, ALUSub, ALUMul, ALUDiv, ALUMod, ALUOr, ALUAnd, ALUXor, ALULsh, ALURsh, ALUArsh, ALUMov}

// gen builds one random program. Jumps are generated in instruction
// index space and fixed up to slot offsets afterwards (LDDW is two
// slots).
func (g *progGen) gen() []Instruction {
	r := g.rng
	n := 4 + r.Intn(40)
	var prog []Instruction
	jumps := map[int]int{} // insn index -> target insn index (fixed up later)
	scratch := []uint8{R0, R2, R3, R4, R5, R6, R7, R8, R9}
	reg := func() uint8 { return scratch[r.Intn(len(scratch))] }
	sizes := []uint8{SizeB, SizeH, SizeW, SizeDW}
	// Seed a few scalars so early reg-reg ops have data.
	for _, d := range []uint8{R0, R3, R6} {
		prog = append(prog, Mov64Imm(d, int32(r.Uint32())))
	}
	for len(prog) < n {
		switch r.Intn(14) {
		case 0: // alu64 imm
			prog = append(prog, ALU64Imm(genALUOps[r.Intn(len(genALUOps))], reg(), int32(r.Uint32())))
		case 1: // alu64 reg
			op := genALUOps[r.Intn(len(genALUOps))]
			prog = append(prog, ALU64Reg(op, reg(), reg()))
		case 2: // alu32 imm / reg
			op := genALUOps[r.Intn(len(genALUOps))]
			ins := ALU64Imm(op, reg(), int32(r.Uint32()))
			ins.Op = ins.Op&^uint8(0x07) | ClassALU
			if r.Intn(2) == 0 {
				ins = ALU64Reg(op, reg(), reg())
				ins.Op = ins.Op&^uint8(0x07) | ClassALU
			}
			prog = append(prog, ins)
		case 3: // neg
			ins := ALU64Imm(ALUNeg, reg(), 0)
			if r.Intn(2) == 0 {
				ins.Op = ins.Op&^uint8(0x07) | ClassALU
			}
			prog = append(prog, ins)
		case 4: // lddw
			prog = append(prog, LoadImm64(reg(), int64(r.Uint64())))
		case 5: // endian
			widths := []int32{16, 32, 64}
			prog = append(prog, Endian(reg(), r.Intn(2) == 0, widths[r.Intn(3)]))
		case 6: // ctx load (usually in bounds; r1 may be clobbered by calls)
			sz := sizes[r.Intn(4)]
			off := int16(r.Intn(g.ctxSize))
			prog = append(prog, LoadMem(sz, reg(), R1, off))
		case 7: // consecutive ctx loads (load-group fodder)
			k := 2 + r.Intn(3)
			for j := 0; j < k; j++ {
				sz := sizes[r.Intn(4)]
				prog = append(prog, LoadMem(sz, reg(), R1, int16(r.Intn(g.ctxSize))))
			}
		case 8: // stack store + load back
			sz := sizes[r.Intn(4)]
			off := int16(-8 * (1 + r.Intn(8)))
			if r.Intn(2) == 0 {
				prog = append(prog, StoreMem(sz, R10, reg(), off))
			} else {
				prog = append(prog, StoreImm(sz, R10, off, int32(r.Uint32())))
			}
			prog = append(prog, LoadMem(sz, reg(), R10, off))
		case 9: // ctx store
			sz := sizes[r.Intn(4)]
			prog = append(prog, StoreMem(sz, R1, reg(), int16(r.Intn(g.ctxSize))))
		case 10: // forward conditional jump (target fixed up later)
			jumps[len(prog)] = -1
			ops := []uint8{JmpEq, JmpNe, JmpGt, JmpGe, JmpLt, JmpLe, JmpSet, JmpSGt, JmpSGe, JmpSLt, JmpSLe}
			op := ops[r.Intn(len(ops))]
			var ins Instruction
			if r.Intn(2) == 0 {
				ins = JumpImm(op, reg(), int32(r.Uint32()), 0)
			} else {
				ins = JumpReg(op, reg(), reg(), 0)
			}
			if r.Intn(4) == 0 {
				ins.Op = ins.Op&^uint8(0x07) | ClassJMP32
			}
			prog = append(prog, ins)
		case 11: // ja (forward)
			jumps[len(prog)] = -1
			prog = append(prog, Ja(0))
		case 12: // helper call
			ids := []int32{HelperKtime, HelperTrace, HelperKtime, HelperTrace, 99}
			id := ids[r.Intn(len(ids))]
			prog = append(prog, Call(id))
		case 13: // map op macro: key on stack, call lookup/update/delete
			var kimm int32
			if r.Intn(2) == 0 {
				kimm = 0xfeed // hits the seeded entry
			} else {
				kimm = int32(r.Intn(8))
			}
			prog = append(prog,
				StoreImm(SizeDW, R10, -8, kimm),
				StoreImm(SizeDW, R10, -16, int32(r.Uint32())),
				Mov64Imm(R1, int32(r.Intn(2))),
				Mov64Reg(R2, R10),
				ALU64Imm(ALUAdd, R2, -8),
			)
			id := []int32{HelperMapLookup, HelperMapUpdate, HelperMapDelete}[r.Intn(3)]
			if id == HelperMapUpdate {
				prog = append(prog, Mov64Reg(R3, R10), ALU64Imm(ALUAdd, R3, -16))
			}
			prog = append(prog, Call(id))
			if id == HelperMapLookup && r.Intn(2) == 0 {
				// Null-checked deref of the returned value.
				jumps[len(prog)] = -1
				prog = append(prog, JumpImm(JmpEq, R0, 0, 0), LoadMem(SizeDW, R0, R0, 0))
			}
		}
	}
	prog = append(prog, Mov64Imm(R0, int32(r.Intn(100))), Exit())
	// Fix up jumps: pick forward targets, then convert instruction
	// indexes to slot-relative offsets.
	slotOf := make([]int, len(prog)+1)
	for i, ins := range prog {
		slotOf[i+1] = slotOf[i] + 1
		if ins.IsLDDW() {
			slotOf[i+1]++
		}
	}
	for i := range jumps {
		target := i + 1 + r.Intn(len(prog)-i-1)
		prog[i].Off = int16(slotOf[target] - slotOf[i] - 1)
	}
	return prog
}

// TestCompiledDifferentialRandom fuzzes both backends with seeded random
// programs — any divergence in result, error, accounting, ctx bytes, or
// map state fails with the offending disassembly.
func TestCompiledDifferentialRandom(t *testing.T) {
	const rounds = 3000
	g := &progGen{rng: rand.New(rand.NewSource(0xeb9f)), ctxSize: 48}
	ctx := make([]byte, g.ctxSize)
	for i := range ctx {
		ctx[i] = byte(i*13 + 1)
	}
	for i := 0; i < rounds; i++ {
		prog := g.gen()
		diffRun(t, fmt.Sprintf("random-%d", i), prog, ctx, true)
	}
}

// TestCompiledDifferentialVerified narrows the fuzz corpus to programs
// the verifier accepts — the population the compiled path serves in
// production — and additionally requires them to run error-free on both
// backends when they avoid chaotic memory ops.
func TestCompiledDifferentialVerified(t *testing.T) {
	const rounds = 2000
	g := &progGen{rng: rand.New(rand.NewSource(0x5eed)), ctxSize: 48}
	ctx := make([]byte, g.ctxSize)
	for i := range ctx {
		ctx[i] = byte(255 - i)
	}
	cfg := DefaultVerifierConfig(diffMaps())
	cfg.CtxSize = g.ctxSize
	accepted := 0
	for i := 0; i < rounds; i++ {
		prog := g.gen()
		if Verify(prog, cfg) != nil {
			continue
		}
		accepted++
		diffRun(t, fmt.Sprintf("verified-%d", i), prog, ctx, true)
	}
	if accepted < 50 {
		t.Fatalf("verifier accepted only %d/%d generated programs; generator too chaotic for this test to mean anything", accepted, rounds)
	}
}
