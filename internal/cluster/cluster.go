// Package cluster explores the paper's §4 question — "how should one
// build CPU-free distributed applications ... over multiple DPUs?" — in
// the C1/C2 styles of §2.4: a rack of self-hosting Hyperion DPUs, each
// serving a KV shard from its own SSDs, with MICA-style client-driven
// request routing (the client hashes the key to the owning DPU; no
// coordinator in the path) and R-way replication for fault tolerance.
package cluster

import (
	"errors"
	"fmt"

	"hyperion/internal/core"
	"hyperion/internal/fault"
	"hyperion/internal/netsim"
	"hyperion/internal/rpc"
	"hyperion/internal/seg"
	"hyperion/internal/sim"
	"hyperion/internal/storage/kvssd"
	"hyperion/internal/telemetry"
	"hyperion/internal/transport"
)

// KV method names served by every DPU.
const (
	MethodGet = "ckv.get"
	MethodPut = "ckv.put"
)

// PutArgs carries a replicated write.
type PutArgs struct {
	Key, Value []byte
}

// Errors.
var (
	ErrNoReplicas = errors.New("cluster: all replicas down")
	ErrNotFound   = errors.New("cluster: key not found")
)

// Node is one DPU serving a shard.
type Node struct {
	DPU  *core.DPU
	KV   *kvssd.KV
	down bool

	Gets, Puts int64
}

// Cluster is a set of KV-serving DPUs on one fabric.
type Cluster struct {
	Eng   *sim.Engine
	Net   *netsim.Network
	Nodes []*Node
	// Replicas is the copies kept per key (including the primary).
	Replicas int
}

// New boots n DPUs, each with a durable B+-tree-indexed KV shard, and
// registers the KV service on their control planes.
func New(eng *sim.Engine, net *netsim.Network, n, replicas int) (*Cluster, error) {
	if replicas < 1 || replicas > n {
		return nil, fmt.Errorf("cluster: replicas %d out of range for %d nodes", replicas, n)
	}
	c := &Cluster{Eng: eng, Net: net, Replicas: replicas}
	for i := 0; i < n; i++ {
		cfg := core.DefaultConfig(fmt.Sprintf("dpu%d", i))
		cfg.NVMe.Blocks = 1 << 20
		cfg.Seg.DRAMBytes = 64 << 20
		cfg.Seg.CheckpointEvery = 0
		d, _, err := core.Boot(eng, net, cfg)
		if err != nil {
			return nil, err
		}
		kv, err := kvssd.Create(d.View, seg.OID(0x4B, 0), kvssd.BackendBTree, true)
		if err != nil {
			return nil, err
		}
		node := &Node{DPU: d, KV: kv}
		c.Nodes = append(c.Nodes, node)
		c.serve(node)
	}
	return c, nil
}

func (c *Cluster) serve(n *Node) {
	d := n.DPU
	d.CtrlSrv.Handle(MethodGet, func(arg any, respond func(any, int, error)) {
		if n.down {
			return // dead nodes do not answer; clients time out
		}
		key, ok := arg.([]byte)
		if !ok {
			respond(nil, 0, fmt.Errorf("cluster: bad get args %T", arg))
			return
		}
		n.Gets++
		val, found, err := n.KV.Get(key)
		d.View.Complete(c.Eng, "ckv.get", func() {
			if err != nil {
				respond(nil, 64, err)
				return
			}
			if !found {
				respond(nil, 64, ErrNotFound)
				return
			}
			respond(val, len(val)+64, nil)
		})
	})
	d.CtrlSrv.Handle(MethodPut, func(arg any, respond func(any, int, error)) {
		if n.down {
			return
		}
		pa, ok := arg.(PutArgs)
		if !ok {
			respond(nil, 0, fmt.Errorf("cluster: bad put args %T", arg))
			return
		}
		n.Puts++
		err := n.KV.Put(pa.Key, pa.Value)
		d.View.Complete(c.Eng, "ckv.put", func() { respond(true, 64, err) })
	})
}

// SetRecorder arms the telemetry plane on every node's DPU (network,
// NVMe, PCIe, store, RPC server). Disarmed (nil) the datapath is
// bit-identical to the unhooked cluster.
func (c *Cluster) SetRecorder(rec *telemetry.Recorder) {
	for _, n := range c.Nodes {
		n.DPU.SetRecorder(rec)
	}
}

// MarkDown simulates a node failure (it stops answering).
func (c *Cluster) MarkDown(i int) { c.Nodes[i].down = true }

// MarkUp revives a node.
func (c *Cluster) MarkUp(i int) { c.Nodes[i].down = false }

// Crashes reports how many crash windows ScheduleCrashes installed.
type Crashes struct {
	Windows int
}

// ScheduleCrashes installs deterministic node crash/restart cycles
// derived from the plan (kind Crash): node picking and window timing
// both come from the plan's seeded stream, each window marks one node
// down at Start and back up at End. The schedule is precomputed and
// bounded by horizon, so it adds a finite set of engine events. A nil
// or zero-rate plan installs nothing.
func (c *Cluster) ScheduleCrashes(plan *fault.Plan, horizon sim.Time, meanUp, downFor sim.Duration) Crashes {
	windows := plan.Windows(fault.Crash, horizon, meanUp, downFor)
	for _, w := range windows {
		node := plan.Pick(len(c.Nodes))
		c.Eng.At(w.Start, "cluster.crash", func() { c.MarkDown(node) })
		c.Eng.At(w.End, "cluster.restart", func() { c.MarkUp(node) })
	}
	return Crashes{Windows: len(windows)}
}

// shardOf hashes a key to its primary node.
func shardOf(key []byte, n int) int {
	h := uint64(14695981039346656037)
	for _, b := range key {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return int(h % uint64(n))
}

// ReplicaSet returns the node indexes holding a key (primary first).
func (c *Cluster) ReplicaSet(key []byte) []int {
	p := shardOf(key, len(c.Nodes))
	out := make([]int, 0, c.Replicas)
	for j := 0; j < c.Replicas; j++ {
		out = append(out, (p+j)%len(c.Nodes))
	}
	return out
}

// Router is the client-side: it owns the shard map and drives requests
// straight to the owning DPU (client-driven routing; the "smartness"
// lives with the client, per passive disaggregation).
type Router struct {
	c   *Cluster
	cli *rpc.Client
	// FailoverTimeout bounds how long to wait before trying the next
	// replica on reads.
	FailoverTimeout sim.Duration

	rec *telemetry.Recorder

	Routed, Failovers int64
}

// SetRecorder arms the telemetry plane on the router and its RPC
// client: each Put/Get becomes one request-scoped trace (a fresh
// RequestID propagated through rpc → transport → netsim) with an
// end-to-end span under layer "cluster". Disarmed (nil) the routing
// path is bit-identical to the unhooked router.
func (r *Router) SetRecorder(rec *telemetry.Recorder) {
	r.rec = rec
	r.cli.SetRecorder(rec)
}

// NewRouter attaches a client host to the fabric.
func NewRouter(c *Cluster, name netsim.Addr) (*Router, error) {
	nic, err := c.Net.Attach(name)
	if err != nil {
		return nil, err
	}
	cli := rpc.NewClient(c.Eng, transport.New(c.Eng, transport.RDMA, nic))
	cli.Timeout = 2 * sim.Millisecond
	return &Router{c: c, cli: cli, FailoverTimeout: 2 * sim.Millisecond}, nil
}

// Put writes to every replica; cb fires when all acks (or any error)
// arrive.
func (r *Router) Put(key, value []byte, cb func(error)) {
	set := r.c.ReplicaSet(key)
	r.Routed++
	span := r.rec.NewRequest()
	if r.rec != nil {
		start := r.c.Eng.Now()
		inner := cb
		cb = func(err error) {
			r.rec.Span("cluster", "put", span, start, r.c.Eng.Now())
			inner(err)
		}
	}
	pending := len(set)
	var firstErr error
	for _, idx := range set {
		addr := r.c.Nodes[idx].DPU.ControlAddr()
		r.cli.CallSpan(addr, MethodPut, PutArgs{Key: key, Value: value}, len(key)+len(value)+64, span, func(_ any, err error) {
			if err != nil && firstErr == nil {
				firstErr = err
			}
			pending--
			if pending == 0 {
				cb(firstErr)
			}
		})
	}
}

// Get reads from the primary, failing over to the next replica when a
// node does not answer.
func (r *Router) Get(key []byte, cb func(val []byte, err error)) {
	set := r.c.ReplicaSet(key)
	r.Routed++
	span := r.rec.NewRequest()
	if r.rec != nil {
		start := r.c.Eng.Now()
		inner := cb
		cb = func(val []byte, err error) {
			r.rec.Span("cluster", "get", span, start, r.c.Eng.Now())
			inner(val, err)
		}
	}
	r.tryGet(key, set, 0, span, cb)
}

func (r *Router) tryGet(key []byte, set []int, attempt int, span telemetry.RequestID, cb func([]byte, error)) {
	if attempt >= len(set) {
		cb(nil, ErrNoReplicas)
		return
	}
	addr := r.c.Nodes[set[attempt]].DPU.ControlAddr()
	r.cli.CallSpan(addr, MethodGet, key, len(key)+64, span, func(val any, err error) {
		if errors.Is(err, rpc.ErrTimeout) {
			r.Failovers++
			r.tryGet(key, set, attempt+1, span, cb)
			return
		}
		if err != nil {
			cb(nil, err)
			return
		}
		cb(val.([]byte), nil)
	})
}
