// Package pcie models the PCIe interconnect of the Hyperion DPU: the
// FPGA-hosted root complex, the x16-to-4×x4 bifurcation provided by the
// crossover board, BAR address assignment, and DMA transfers with per-link
// bandwidth and latency.
//
// Making the DPU self-hosting — running the root complex on the FPGA
// instead of a host CPU — is the paper's key hardware move: every access
// to storage funnels through the FPGA with no host in the loop.
package pcie

import (
	"errors"
	"fmt"

	"hyperion/internal/fault"
	"hyperion/internal/sim"
	"hyperion/internal/telemetry"
)

// Per-lane effective bandwidth (PCIe Gen3, 8 GT/s with 128b/130b
// encoding, minus protocol overhead ≈ 985 MB/s).
const Gen3LaneBytesPerSec = 985_000_000

// Typical one-way TLP latency through a switch/bridge hop.
const hopLatency = 300 * sim.Nanosecond

// Errors returned by PCIe operations.
var (
	ErrNoSuchDevice  = errors.New("pcie: no such device")
	ErrBadAddress    = errors.New("pcie: address not claimed by any BAR")
	ErrEnumerated    = errors.New("pcie: bus already enumerated")
	ErrNotEnumerated = errors.New("pcie: bus not enumerated")
	ErrPortTaken     = errors.New("pcie: port already occupied")
)

// Device is an endpoint attached to the bus. Devices expose memory-mapped
// registers via a BAR and accept DMA reads/writes.
type Device interface {
	// PCIeName identifies the device for enumeration output.
	PCIeName() string
	// BARSize returns the BAR aperture the device requests, in bytes.
	BARSize() int64
	// MMIORead and MMIOWrite access device registers at a BAR-relative
	// offset. They are doorbell-sized accesses (4/8 bytes).
	MMIORead(offset int64) uint64
	MMIOWrite(offset int64, val uint64)
}

// Port is one bifurcated link (x4 in the Hyperion crossover board).
type Port struct {
	Index     int
	Lanes     int
	dev       Device
	barBase   int64
	barSize   int64
	busyUntil sim.Time
	dmaName   string // precomputed DMA completion event name
	Bytes     int64
	TLPs      int64
}

// BandwidthBytesPerSec returns the port's effective unidirectional
// bandwidth.
func (p *Port) BandwidthBytesPerSec() int64 {
	return int64(p.Lanes) * Gen3LaneBytesPerSec
}

// Device returns the attached endpoint (nil if empty).
func (p *Port) Device() Device { return p.dev }

// BAR returns the port's assigned BAR window after enumeration.
func (p *Port) BAR() (base, size int64) { return p.barBase, p.barSize }

// RootComplex is the FPGA-hosted PCIe root with a fixed bifurcation.
type RootComplex struct {
	eng        *sim.Engine
	ports      []*Port
	enumerated bool
	nextBase   int64
	rec        *telemetry.Recorder

	Counters sim.CounterSet
}

// SetRecorder arms the telemetry plane: a latency histogram sample
// per DMA (queueing + transfer + hop) and MMIO counters. Disarmed
// (nil) the hooks are pure nil checks.
func (rc *RootComplex) SetRecorder(rec *telemetry.Recorder) { rc.rec = rec }

// NewRootComplex creates a root with the given bifurcation, e.g.
// lanes = [4,4,4,4] for the Hyperion crossover board splitting x16.
func NewRootComplex(eng *sim.Engine, lanes []int) *RootComplex {
	rc := &RootComplex{eng: eng, nextBase: 0x1000_0000}
	for i, l := range lanes {
		if l <= 0 {
			panic("pcie: non-positive lane count")
		}
		rc.ports = append(rc.ports, &Port{Index: i, Lanes: l})
	}
	return rc
}

// Ports returns all ports.
func (rc *RootComplex) Ports() []*Port { return rc.ports }

// Attach plugs a device into port i. Must happen before Enumerate.
func (rc *RootComplex) Attach(i int, dev Device) error {
	if rc.enumerated {
		return ErrEnumerated
	}
	if i < 0 || i >= len(rc.ports) {
		return ErrNoSuchDevice
	}
	if rc.ports[i].dev != nil {
		return ErrPortTaken
	}
	rc.ports[i].dev = dev
	return nil
}

// Enumerate walks the bus and assigns BAR windows — the job the paper
// notes a host CPU normally performs, done here by the DPU itself.
// It returns a human-readable description of the discovered topology.
func (rc *RootComplex) Enumerate() ([]string, error) {
	if rc.enumerated {
		return nil, ErrEnumerated
	}
	var out []string
	for _, p := range rc.ports {
		if p.dev == nil {
			out = append(out, fmt.Sprintf("port%d: empty (x%d)", p.Index, p.Lanes))
			continue
		}
		size := p.dev.BARSize()
		// Align BARs to their size, as real PCIe requires.
		base := alignUp(rc.nextBase, size)
		p.barBase, p.barSize = base, size
		p.dmaName = "pcie.dma:" + p.dev.PCIeName()
		rc.nextBase = base + size
		out = append(out, fmt.Sprintf("port%d: %s x%d BAR=[%#x,%#x)", p.Index, p.dev.PCIeName(), p.Lanes, base, base+size))
	}
	rc.enumerated = true
	return out, nil
}

func alignUp(x, align int64) int64 {
	if align <= 0 {
		return x
	}
	return (x + align - 1) / align * align
}

// resolve maps a bus address to (port, offset).
func (rc *RootComplex) resolve(addr int64) (*Port, int64, error) {
	if !rc.enumerated {
		return nil, 0, ErrNotEnumerated
	}
	for _, p := range rc.ports {
		if p.dev != nil && addr >= p.barBase && addr < p.barBase+p.barSize {
			return p, addr - p.barBase, nil
		}
	}
	return nil, 0, ErrBadAddress
}

// MMIORead performs a register read at a bus address (synchronous; the
// round-trip time is charged to the caller via the returned duration).
func (rc *RootComplex) MMIORead(addr int64) (uint64, sim.Duration, error) {
	p, off, err := rc.resolve(addr)
	if err != nil {
		return 0, 0, err
	}
	rc.Counters.Get("mmio_reads").Add(1)
	if rc.rec != nil {
		rc.rec.Count("pcie", "mmio_reads", 1)
	}
	p.TLPs++
	return p.dev.MMIORead(off), 2 * hopLatency, nil
}

// MMIOWrite performs a posted register write (doorbell ring).
func (rc *RootComplex) MMIOWrite(addr int64, val uint64) (sim.Duration, error) {
	p, off, err := rc.resolve(addr)
	if err != nil {
		return 0, err
	}
	rc.Counters.Get("mmio_writes").Add(1)
	if rc.rec != nil {
		rc.rec.Count("pcie", "mmio_writes", 1)
	}
	p.TLPs++
	p.dev.MMIOWrite(off, val)
	return hopLatency, nil
}

// DMA models a bulk transfer of size bytes to or from the device behind
// the given bus address. The transfer serializes on the port's link:
// concurrent DMAs queue behind each other, modeling link contention.
// done fires when the last byte lands.
func (rc *RootComplex) DMA(addr int64, size int64, done func()) error {
	p, _, err := rc.resolve(addr)
	if err != nil {
		return err
	}
	if size <= 0 {
		return fmt.Errorf("pcie: non-positive DMA size %d", size)
	}
	now := rc.eng.Now()
	start := p.busyUntil
	if start < now {
		start = now
	}
	xfer := sim.Duration(float64(size) / float64(p.BandwidthBytesPerSec()) * float64(sim.Second))
	finish := start.Add(xfer + hopLatency)
	p.busyUntil = start.Add(xfer)
	p.Bytes += size
	p.TLPs += (size + 4095) / 4096
	rc.Counters.Get("dma_bytes").Add(size)
	if rc.rec != nil {
		rc.rec.Observe("pcie", "dma", finish.Sub(now))
	}
	if done == nil {
		done = nopDone
	}
	rc.eng.At(finish, p.dmaName, done)
	return nil
}

// nopDone keeps the completion event (and thus event order) of a
// callback-less DMA identical to one with a callback.
func nopDone() {}

// ScheduleLinkFaults installs deterministic link-down/retrain windows
// derived from the plan (kind LinkDown): during each window every
// port's link stalls — in-flight transfers finish on their old
// schedule, but no new DMA may start before the retrain completes.
// The schedule is precomputed and bounded by horizon, so it adds a
// finite set of engine events and never keeps Run() alive on its own.
// A nil or zero-rate plan installs nothing. Returns the window count.
func (rc *RootComplex) ScheduleLinkFaults(plan *fault.Plan, horizon sim.Time, meanUp, downFor sim.Duration) int {
	windows := plan.Windows(fault.LinkDown, horizon, meanUp, downFor)
	for _, w := range windows {
		end := w.End
		rc.eng.At(w.Start, "pcie.linkdown", func() {
			rc.Counters.Get("link_down_windows").Add(1)
			for _, p := range rc.ports {
				if p.busyUntil < end {
					p.busyUntil = end
				}
			}
		})
	}
	return len(windows)
}

// PortOf returns the port whose BAR window contains addr.
func (rc *RootComplex) PortOf(addr int64) (*Port, error) {
	p, _, err := rc.resolve(addr)
	return p, err
}
