package flow

import "go/ast"

// State is one dataflow fact set. nil means "unreached" (bottom): the
// solver never calls Transfer on a nil state and Merge treats nil as
// the identity.
type State any

// Direction selects forward (entry→exit) or backward (exit→entry)
// analysis.
type Direction uint8

const (
	Forward Direction = iota
	Backward
)

// Problem defines one dataflow analysis over a Graph. Implementations
// must be pure: Transfer and FlowEdge return fresh or structurally
// shared states and never mutate their input (the solver memoizes
// states across iterations).
type Problem interface {
	// Boundary is the state at the boundary block: Entry for forward
	// problems, Exit for backward ones.
	Boundary() State
	// Transfer applies one node's gen/kill effect.
	Transfer(n ast.Node, s State) State
	// FlowEdge refines state crossing an edge — e.g. narrowing on an
	// `err != nil` branch. Return s unchanged when the edge is neutral.
	FlowEdge(e Edge, s State) State
	// Merge joins states at a confluence point. Either input may be nil
	// (unreached); Merge must treat nil as identity.
	Merge(a, b State) State
	// Equal reports state equality; the fixpoint terminates when no
	// block's output changes under Equal.
	Equal(a, b State) bool
}

// Result holds the fixpoint: for forward problems In is the merged
// state entering each block and Out the state leaving it; for backward
// problems the roles mirror (In is the state at block end, Out at
// block start).
type Result struct {
	In  map[*Block]State
	Out map[*Block]State
}

// Solve iterates p over g to fixpoint with a deterministic worklist
// (blocks are revisited in index order, so diagnostics derived from the
// result are stable across runs).
func Solve(g *Graph, p Problem, dir Direction) *Result {
	res := &Result{
		In:  make(map[*Block]State, len(g.Blocks)),
		Out: make(map[*Block]State, len(g.Blocks)),
	}
	boundary := g.Entry
	if dir == Backward {
		boundary = g.Exit
	}

	inWork := make([]bool, len(g.Blocks))
	work := &blockHeap{}
	push := func(b *Block) {
		if !inWork[b.Index] {
			inWork[b.Index] = true
			work.push(b)
		}
	}
	push(boundary)

	for work.len() > 0 {
		blk := work.pop()
		inWork[blk.Index] = false

		// Merge inputs.
		var in State
		if blk == boundary {
			in = p.Boundary()
		}
		if dir == Forward {
			for _, pred := range blk.Preds {
				out := res.Out[pred]
				if out == nil {
					continue
				}
				for _, e := range pred.Succs {
					if e.To != blk {
						continue
					}
					in = p.Merge(in, p.FlowEdge(e, out))
				}
			}
		} else {
			for _, e := range blk.Succs {
				out := res.Out[e.To]
				if out == nil {
					continue
				}
				in = p.Merge(in, p.FlowEdge(e, out))
			}
		}
		res.In[blk] = in
		if in == nil {
			continue // unreached so far
		}

		out := transferBlock(p, blk, in, dir)
		if p.Equal(res.Out[blk], out) {
			continue
		}
		res.Out[blk] = out
		if dir == Forward {
			for _, e := range blk.Succs {
				push(e.To)
			}
		} else {
			for _, pred := range blk.Preds {
				push(pred)
			}
		}
	}
	return res
}

func transferBlock(p Problem, blk *Block, in State, dir Direction) State {
	s := in
	if dir == Forward {
		for _, n := range blk.Nodes {
			s = p.Transfer(n, s)
		}
	} else {
		for i := len(blk.Nodes) - 1; i >= 0; i-- {
			s = p.Transfer(blk.Nodes[i], s)
		}
	}
	return s
}

// blockHeap is a tiny binary min-heap on Block.Index, keeping worklist
// order — and therefore iteration order and any order-sensitive state
// construction — deterministic without sorting on every pop.
type blockHeap struct {
	blocks []*Block
}

func (h *blockHeap) len() int { return len(h.blocks) }

func (h *blockHeap) push(b *Block) {
	h.blocks = append(h.blocks, b)
	i := len(h.blocks) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.blocks[parent].Index <= h.blocks[i].Index {
			break
		}
		h.blocks[parent], h.blocks[i] = h.blocks[i], h.blocks[parent]
		i = parent
	}
}

func (h *blockHeap) pop() *Block {
	top := h.blocks[0]
	last := len(h.blocks) - 1
	h.blocks[0] = h.blocks[last]
	h.blocks = h.blocks[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h.blocks) && h.blocks[l].Index < h.blocks[small].Index {
			small = l
		}
		if r < len(h.blocks) && h.blocks[r].Index < h.blocks[small].Index {
			small = r
		}
		if small == i {
			break
		}
		h.blocks[i], h.blocks[small] = h.blocks[small], h.blocks[i]
		i = small
	}
	return top
}
