package ebpf

import (
	"errors"
	"testing"
)

// FuzzDecodeVerifyLoad drives arbitrary bytes through the whole
// program-loading pipeline — Decode, Verify, Load, and (when the
// verifier accepts) both execution backends. The contract under fuzz
// is absolute: no input may panic any stage, and hostile inputs must
// be rejected with errors, not executed. For accepted programs the
// compiled backend must agree with the reference interpreter
// bit-for-bit, so the fuzzer doubles as a differential test.
func FuzzDecodeVerifyLoad(f *testing.F) {
	// Seed with valid programs so the fuzzer starts inside the
	// interesting region (mutations of well-formed encodings) instead
	// of spending its budget on trivially-truncated garbage.
	seeds := []string{
		"mov r0, 0\nexit",
		"mov r0, 1\nadd r0, 41\nexit",
		"ldxw r0, [r1+0]\nexit",
		"mov r2, 5\nstxdw [r10-8], r2\nldxdw r0, [r10-8]\nexit",
		"mov r0, 0\njeq r0, 1, skip\nadd r0, 10\nskip: add r0, 100\nexit",
	}
	for _, src := range seeds {
		f.Add(Encode(MustAssemble(src)))
	}
	f.Add([]byte{})
	f.Add([]byte{0x18, 0, 0, 0, 1, 0, 0, 0}) // LDDW missing its second half
	f.Add(make([]byte, 8*(MaxInsns+1)))      // over the instruction limit

	f.Fuzz(func(t *testing.T, raw []byte) {
		prog, err := Decode(raw)
		if err != nil {
			return
		}
		maps := &MapSet{}
		maps.Add(NewArrayMap(8, 4))
		if err := Verify(prog, DefaultVerifierConfig(maps)); err != nil {
			return
		}
		// The verifier accepted: loading and running must also be safe.
		vm := NewVM(maps)
		if err := vm.Load(prog); err != nil {
			t.Fatalf("verified program failed to load: %v", err)
		}
		ctx := []byte{1, 2, 3, 4, 5, 6, 7, 8}
		got, gotErr := vm.Run(append([]byte(nil), ctx...))
		iv := NewVM(maps)
		if err := iv.Load(prog); err != nil {
			t.Fatalf("verified program failed to load (interpreter): %v", err)
		}
		iv.noCompile = true
		want, wantErr := iv.RunInterpreted(append([]byte(nil), ctx...))
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("backend error divergence: compiled=%v interpreted=%v", gotErr, wantErr)
		}
		if gotErr == nil && got != want {
			t.Fatalf("backend result divergence: compiled=%#x interpreted=%#x", got, want)
		}
		if gotErr != nil && !errors.Is(gotErr, wantErr) && gotErr.Error() != wantErr.Error() {
			t.Fatalf("backend error text divergence: compiled=%v interpreted=%v", gotErr, wantErr)
		}
	})
}
