// Package kvssd exports the network-attached SSD abstraction the paper
// draws in Figure 2 as "KV-SSD": a byte-string key-value interface
// served directly by the DPU, with an index (B+ tree or LSM tree —
// the backend pair the KV experiments ablate) mapping key hashes to
// records in an append-only value log of segment objects.
package kvssd

import (
	"bytes"
	"errors"
	"fmt"
	"hyperion/internal/wire"

	"hyperion/internal/seg"
	"hyperion/internal/storage/bptree"
	"hyperion/internal/storage/lsm"
)

// Index abstracts the two backends.
type Index interface {
	Get(key uint64) (uint64, bool, error)
	Put(key, val uint64) error
}

// treeIndex adapts bptree.Tree.
type treeIndex struct{ t *bptree.Tree }

func (x treeIndex) Get(k uint64) (uint64, bool, error) { return x.t.Get(k) }
func (x treeIndex) Put(k, v uint64) error              { return x.t.Insert(k, v) }

// lsmIndex adapts lsm.Tree.
type lsmIndex struct{ t *lsm.Tree }

func (x lsmIndex) Get(k uint64) (uint64, bool, error) { return x.t.Get(k) }
func (x lsmIndex) Put(k, v uint64) error              { return x.t.Put(k, v) }

// Backend selects the index structure.
type Backend int

const (
	BackendBTree Backend = iota
	BackendLSM
)

func (b Backend) String() string {
	if b == BackendBTree {
		return "btree"
	}
	return "lsm"
}

// Log chunk geometry: 16-bit chunk index, offset within chunk, and
// record length packed into the index's uint64 value.
const (
	chunkBytes  = 1 << 20
	deletedSlot = ^uint64(0) // probe-chain preserving tombstone
	maxProbes   = 64
)

// Errors.
var (
	ErrKeyTooLarge = errors.New("kvssd: key too large")
	ErrValTooLarge = errors.New("kvssd: value too large")
	ErrFull        = errors.New("kvssd: probe chain exhausted")
	ErrCorrupt     = errors.New("kvssd: corrupt record")
)

const (
	maxKeyLen = 1 << 10
	maxValLen = 1 << 18
)

// KV is a key-value store instance.
type KV struct {
	v       *seg.SyncView
	idx     Index
	backend Backend
	meta    seg.ObjectID
	durable bool

	chunks  []seg.ObjectID
	tailOff int64
	nextLo  uint64

	// Reused encode/read scratch; the store is single-threaded (DPU
	// handlers are run-to-completion) and the layers below copy.
	metaBuf []byte
	recBuf  []byte
	readBuf []byte

	Puts, Gets, Deletes, Collisions int64
}

const metaMagic = 0x4b565331 // "KVS1"

// Create initializes a store. The meta object, index objects, and log
// chunks all share metaID.Hi as their id prefix.
func Create(v *seg.SyncView, metaID seg.ObjectID, backend Backend, durable bool) (*KV, error) {
	kv := &KV{v: v, backend: backend, meta: metaID, durable: durable, nextLo: metaID.Lo + 1}
	if _, err := v.Alloc(metaID, 4096, durable, seg.HintAuto); err != nil {
		return nil, err
	}
	idxMeta := seg.ObjectID{Hi: metaID.Hi, Lo: kv.nextLo}
	kv.nextLo += 1 << 32 // generous id space for index nodes
	var err error
	switch backend {
	case BackendBTree:
		var t *bptree.Tree
		t, err = bptree.Create(v, idxMeta, durable)
		kv.idx = treeIndex{t}
	case BackendLSM:
		var t *lsm.Tree
		t, err = lsm.Create(v, idxMeta, durable, 0)
		kv.idx = lsmIndex{t}
	default:
		return nil, fmt.Errorf("kvssd: unknown backend %d", backend)
	}
	if err != nil {
		return nil, err
	}
	if err := kv.addChunk(); err != nil {
		return nil, err
	}
	return kv, kv.writeMeta()
}

// Open reopens an existing store.
func Open(v *seg.SyncView, metaID seg.ObjectID) (*KV, error) {
	kv := &KV{v: v, meta: metaID}
	buf, err := v.ReadAt(metaID, 0, 4096)
	if err != nil {
		return nil, err
	}
	if wire.LE32At(buf, 0) != metaMagic {
		return nil, fmt.Errorf("%w: bad meta magic", ErrCorrupt)
	}
	kv.backend = Backend(buf[4])
	kv.durable = buf[5] == 1
	kv.nextLo = wire.LE64At(buf, 8)
	kv.tailOff = int64(wire.LE64At(buf, 16))
	n := int(wire.LE32At(buf, 24))
	off := 32
	for i := 0; i < n; i++ {
		kv.chunks = append(kv.chunks, seg.ObjectID{
			Hi: wire.LE64At(buf, off),
			Lo: wire.LE64At(buf, off+8),
		})
		off += 16
	}
	idxMeta := seg.ObjectID{Hi: metaID.Hi, Lo: metaID.Lo + 1}
	switch kv.backend {
	case BackendBTree:
		t, err := bptree.Open(v, idxMeta)
		if err != nil {
			return nil, err
		}
		kv.idx = treeIndex{t}
	case BackendLSM:
		t, err := lsm.Open(v, idxMeta)
		if err != nil {
			return nil, err
		}
		kv.idx = lsmIndex{t}
	}
	return kv, nil
}

func (kv *KV) writeMeta() error {
	// The header and the (monotonically growing) chunk list are fully
	// rewritten on every call, so the buffer never leaks stale bytes.
	if kv.metaBuf == nil {
		kv.metaBuf = make([]byte, 4096)
	}
	buf := kv.metaBuf
	wire.PutLE32At(buf, 0, metaMagic)
	buf[4] = byte(kv.backend)
	if kv.durable {
		buf[5] = 1
	}
	wire.PutLE64At(buf, 8, kv.nextLo)
	wire.PutLE64At(buf, 16, uint64(kv.tailOff))
	wire.PutLE32At(buf, 24, uint32(len(kv.chunks)))
	off := 32
	for _, c := range kv.chunks {
		wire.PutLE64At(buf, off, c.Hi)
		wire.PutLE64At(buf, off+8, c.Lo)
		off += 16
		if off > len(buf)-16 {
			return fmt.Errorf("kvssd: too many log chunks for meta object")
		}
	}
	return kv.v.WriteAt(kv.meta, 0, buf)
}

func (kv *KV) addChunk() error {
	id := seg.ObjectID{Hi: kv.meta.Hi, Lo: kv.nextLo}
	kv.nextLo++
	if _, err := kv.v.Alloc(id, chunkBytes, kv.durable, seg.HintAuto); err != nil {
		return err
	}
	kv.chunks = append(kv.chunks, id)
	kv.tailOff = 0
	return nil
}

// hash is FNV-1a over the key.
func hash(key []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, b := range key {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}

func pack(chunk int, off int64, recLen int) uint64 {
	return uint64(chunk)<<44 | uint64(off)<<20 | uint64(recLen)
}

func unpack(v uint64) (chunk int, off int64, recLen int) {
	return int(v >> 44), int64(v>>20) & (1<<24 - 1), int(v & (1<<20 - 1))
}

// appendRecord writes [keyLen u16][valLen u32][key][val] to the log.
func (kv *KV) appendRecord(key, val []byte) (uint64, error) {
	recLen := 6 + len(key) + len(val)
	if kv.tailOff+int64(recLen) > chunkBytes {
		if err := kv.addChunk(); err != nil {
			return 0, err
		}
	}
	if cap(kv.recBuf) < recLen {
		kv.recBuf = make([]byte, recLen)
	}
	rec := kv.recBuf[:recLen]
	wire.PutLE16At(rec, 0, uint16(len(key)))
	wire.PutLE32At(rec, 2, uint32(len(val)))
	copy(rec[6:], key)
	copy(rec[6+len(key):], val)
	chunk := len(kv.chunks) - 1
	off := kv.tailOff
	if err := kv.v.WriteAt(kv.chunks[chunk], off, rec); err != nil {
		return 0, err
	}
	kv.tailOff += int64(recLen)
	if err := kv.writeMeta(); err != nil {
		return 0, err
	}
	return pack(chunk, off, recLen), nil
}

// readRecord decodes the record at ref. The returned key and val alias
// the store's read scratch and are valid only until the next readRecord.
func (kv *KV) readRecord(ref uint64) (key, val []byte, err error) {
	chunk, off, recLen := unpack(ref)
	if chunk >= len(kv.chunks) {
		return nil, nil, fmt.Errorf("%w: chunk %d", ErrCorrupt, chunk)
	}
	buf, err := kv.v.ReadAtBuf(kv.chunks[chunk], off, int64(recLen), kv.readBuf)
	if err != nil {
		return nil, nil, err
	}
	kv.readBuf = buf
	kl := int(wire.LE16At(buf, 0))
	vl := int(wire.LE32At(buf, 2))
	if 6+kl+vl != recLen {
		return nil, nil, fmt.Errorf("%w: lengths", ErrCorrupt)
	}
	return buf[6 : 6+kl], buf[6+kl : 6+kl+vl], nil
}

// Put inserts or replaces key → val.
func (kv *KV) Put(key, val []byte) error {
	if len(key) == 0 || len(key) > maxKeyLen {
		return ErrKeyTooLarge
	}
	if len(val) > maxValLen {
		return ErrValTooLarge
	}
	kv.Puts++
	h := hash(key)
	for i := uint64(0); i < maxProbes; i++ {
		slot := h + i
		ref, ok, err := kv.idx.Get(slot)
		if err != nil {
			return err
		}
		if ok && ref != deletedSlot {
			k, _, err := kv.readRecord(ref)
			if err != nil {
				return err
			}
			if !bytes.Equal(k, key) {
				kv.Collisions++
				continue // occupied by a colliding key
			}
		}
		// Empty, deleted, or same key: claim this slot.
		newRef, err := kv.appendRecord(key, val)
		if err != nil {
			return err
		}
		return kv.idx.Put(slot, newRef)
	}
	return ErrFull
}

// Get returns the value for key.
func (kv *KV) Get(key []byte) ([]byte, bool, error) {
	kv.Gets++
	h := hash(key)
	for i := uint64(0); i < maxProbes; i++ {
		slot := h + i
		ref, ok, err := kv.idx.Get(slot)
		if err != nil {
			return nil, false, err
		}
		if !ok {
			return nil, false, nil // end of probe chain
		}
		if ref == deletedSlot {
			continue
		}
		k, v, err := kv.readRecord(ref)
		if err != nil {
			return nil, false, err
		}
		if bytes.Equal(k, key) {
			return append([]byte(nil), v...), true, nil
		}
		kv.Collisions++
	}
	return nil, false, nil
}

// Delete removes key, reporting whether it was present. The index slot
// keeps a marker so longer probe chains stay intact.
func (kv *KV) Delete(key []byte) (bool, error) {
	kv.Deletes++
	h := hash(key)
	for i := uint64(0); i < maxProbes; i++ {
		slot := h + i
		ref, ok, err := kv.idx.Get(slot)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
		if ref == deletedSlot {
			continue
		}
		k, _, err := kv.readRecord(ref)
		if err != nil {
			return false, err
		}
		if bytes.Equal(k, key) {
			return true, kv.idx.Put(slot, deletedSlot)
		}
	}
	return false, nil
}

// Backend returns which index backs this store.
func (kv *KV) Backend() Backend { return kv.backend }

// LogBytes reports the total value-log footprint.
func (kv *KV) LogBytes() int64 {
	if len(kv.chunks) == 0 {
		return 0
	}
	return int64(len(kv.chunks)-1)*chunkBytes + kv.tailOff
}

// FlushIndex persists buffered index state (LSM memtable). No-op for
// the B+ tree backend.
func (kv *KV) FlushIndex() error {
	if x, ok := kv.idx.(lsmIndex); ok {
		return x.t.Flush()
	}
	return nil
}
