// Analytics example: the §2.3 end-to-end data pipeline. A columnar
// table (Parquet-style row groups with statistics) is written into the
// hfs filesystem on the DPU's SSDs; the filesystem publishes its layout
// annotation; a compiled access plan resolves the file with no
// filesystem code in the loop; and a predicate-pushdown scan runs next
// to the data — Arrow/Parquet on F2FS/ext4-style storage "without any
// host-side, or client-side CPU involvement".
package main

import (
	"fmt"
	"log"

	"hyperion/internal/core"
	"hyperion/internal/netsim"
	"hyperion/internal/seg"
	"hyperion/internal/sim"
	"hyperion/internal/storage/colfmt"
	"hyperion/internal/storage/hfs"
)

func main() {
	eng := sim.NewEngine(3)
	net := netsim.New(eng, netsim.DefaultConfig())
	dpu, _, err := core.Boot(eng, net, core.DefaultConfig("olap"))
	if err != nil {
		log.Fatal(err)
	}
	v := dpu.View

	// Filesystem on the single-level store.
	fs, err := hfs.Mkfs(v, seg.OID(0xF5, 0), true)
	if err != nil {
		log.Fatal(err)
	}
	if err := fs.Mkdir("/warehouse"); err != nil {
		log.Fatal(err)
	}

	// A sensor table: 200k rows in 8k-row groups.
	schema := colfmt.Schema{Columns: []colfmt.Column{
		{Name: "ts", Type: colfmt.TypeInt64},
		{Name: "temp_mC", Type: colfmt.TypeInt64},
		{Name: "sensor", Type: colfmt.TypeString},
	}}
	w := colfmt.NewWriter(v, schema, 8192)
	rng := sim.NewRand(17)
	const rows = 200000
	for i := 0; i < rows; i++ {
		temp := int64(20000 + rng.Intn(8000)) // 20–28 °C in milli-degrees
		if err := w.Append(int64(i), temp, fmt.Sprintf("s%02d", i%16)); err != nil {
			log.Fatal(err)
		}
	}
	tableID := seg.OID(0xF6, 1)
	if err := w.Close(tableID, true); err != nil {
		log.Fatal(err)
	}
	if err := fs.WriteFile("/warehouse/sensors.tbl", []byte(tableID.String())); err != nil {
		log.Fatal(err)
	}
	loadCost := v.TakeCost()
	fmt.Printf("ingested %d rows (modeled %v of device time)\n", rows, loadCost)

	// Resolve the file through the ANNOTATION, not the FS code: this is
	// the access path an accelerator executes.
	ann := fs.Annotate()
	plan, err := hfs.CompilePlan("/warehouse/sensors.tbl")
	if err != nil {
		log.Fatal(err)
	}
	ptr, err := hfs.ExecPlan(v, ann, plan)
	if err != nil {
		log.Fatal(err)
	}
	oid, err := seg.ParseObjectID(string(ptr))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("annotated plan resolved %q → object %v in %d steps\n",
		"/warehouse/sensors.tbl", oid, len(plan.Steps))

	// Near-data scan with predicate pushdown on the time column.
	rd, err := colfmt.OpenReader(v, oid)
	if err != nil {
		log.Fatal(err)
	}
	v.TakeCost()
	var hot int
	var sum int64
	if err := rd.ScanInt64("ts", 120000, 129999, func(b *colfmt.Batch, row int) bool {
		hot++
		sum += b.Int64s["temp_mC"][row]
		return true
	}); err != nil {
		log.Fatal(err)
	}
	scanCost := v.TakeCost()
	fmt.Printf("scan ts∈[120000,130000): %d rows, mean temp %.2f °C\n",
		hot, float64(sum)/float64(hot)/1000)
	fmt.Printf("pushdown: read %d row groups, skipped %d; modeled scan time %v\n",
		rd.GroupsRead, rd.GroupsSkipped, scanCost)
}
